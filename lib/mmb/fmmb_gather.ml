type params = { periods : int; p_active : float; use_acks : bool }

let default_params ~n ~k ~c =
  let c2 = c *. c in
  {
    periods =
      8
      + int_of_float
          (ceil (6. *. c2 *. (float_of_int k +. log (float_of_int (max 2 n)))));
    p_active = Float.min 0.5 (1. /. (2. *. c2));
    use_acks = true;
  }

type result = {
  mis_sets : (int, unit) Hashtbl.t array;
  leftover : int;
  rounds_run : int;
  budget_rounds : int;
  data_broadcasts : int;
}

let run ~dual ~rng ~policy ~params ~mis ~initial ~on_payload ?engine ?trace
    ?(fprog = 1.) () =
  let n = Graphs.Dual.n dual in
  let { periods; p_active; use_acks } = params in
  let budget_rounds = 3 * periods in
  let sets = Array.init n (fun _ -> Hashtbl.create 8) in
  Array.iteri
    (fun v payloads ->
      List.iter (fun m -> Hashtbl.replace sets.(v) m ()) payloads)
    initial;
  let heard_probe = Array.make n false in
  let data_broadcasts = ref 0 in
  let absorbed = Array.make n None in
  let active = Array.make n false in
  let engine =
    match engine with
    | Some e -> e
    | None ->
        Amac.Round_engine.of_enhanced
          (Amac.Enhanced_mac.create ~dual ~fprog ~policy ~rng ?trace ())
  in
  let smallest_payload v = Dsim.Tbl.min_key ~cmp:Int.compare sets.(v) in
  let note_payloads v inbox =
    List.iter
      (fun env ->
        match Fmmb_msg.payload env.Amac.Message.body with
        | Some payload -> on_payload ~node:v ~payload
        | None -> ())
      inbox
  in
  let process_inbox v ~prev_round inbox =
    note_payloads v inbox;
    match prev_round mod 3 with
    | 0 ->
        if not mis.(v) then
          heard_probe.(v) <-
            List.exists
              (fun env ->
                match env.Amac.Message.body with
                | Fmmb_msg.Probe { origin = _ } -> env.Amac.Message.reliable
                | _ -> false)
              inbox
    | 1 ->
        if mis.(v) then
          List.iter
            (fun env ->
              match env.Amac.Message.body with
              | Fmmb_msg.Data { origin = _; payload }
                when env.Amac.Message.reliable ->
                  Hashtbl.replace sets.(v) payload ();
                  if absorbed.(v) = None then absorbed.(v) <- Some payload
              | _ -> ())
            inbox
    | _ ->
        if (not mis.(v)) && use_acks then
          List.iter
            (fun env ->
              match env.Amac.Message.body with
              | Fmmb_msg.Ack_data { origin = _; payload }
                when env.Amac.Message.reliable ->
                  Hashtbl.remove sets.(v) payload
              | _ -> ())
            inbox
  in
  for v = 0 to n - 1 do
    engine.Amac.Round_engine.set_node ~node:v (fun ~round ~inbox ->
        if round > 0 then process_inbox v ~prev_round:(round - 1) inbox;
        match round mod 3 with
        | 0 ->
            absorbed.(v) <- None;
            if mis.(v) then begin
              active.(v) <- Dsim.Rng.bernoulli rng ~p:p_active;
              if active.(v) then
                Amac.Enhanced_mac.Broadcast (Fmmb_msg.Probe { origin = v })
              else Amac.Enhanced_mac.Listen
            end
            else Amac.Enhanced_mac.Listen
        | 1 ->
            if (not mis.(v)) && heard_probe.(v) then begin
              match smallest_payload v with
              | Some payload ->
                  incr data_broadcasts;
                  Amac.Enhanced_mac.Broadcast
                    (Fmmb_msg.Data { origin = v; payload })
              | None -> Amac.Enhanced_mac.Listen
            end
            else Amac.Enhanced_mac.Listen
        | _ -> (
            match (mis.(v) && use_acks, absorbed.(v)) with
            | true, Some payload ->
                Amac.Enhanced_mac.Broadcast
                  (Fmmb_msg.Ack_data { origin = v; payload })
            | _ -> Amac.Enhanced_mac.Listen))
  done;
  let drained () =
    let ok = ref true in
    for v = 0 to n - 1 do
      if (not mis.(v)) && Hashtbl.length sets.(v) > 0 then ok := false
    done;
    !ok
  in
  (* Stop only at period boundaries so in-flight acks land. *)
  let stop () =
    engine.Amac.Round_engine.rounds_done () mod 3 = 0 && drained ()
  in
  let rounds_run =
    engine.Amac.Round_engine.run_until ~max_rounds:budget_rounds ~stop
  in
  let leftover =
    let total = ref 0 in
    for v = 0 to n - 1 do
      if not mis.(v) then total := !total + Hashtbl.length sets.(v)
    done;
    !total
  in
  {
    mis_sets = sets;
    leftover;
    rounds_run;
    budget_rounds;
    data_broadcasts = !data_broadcasts;
  }
