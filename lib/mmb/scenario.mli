(** Config-file-driven experiments: parse a JSON scenario, run it, report.

    Lets downstream users run their own sweeps without writing OCaml:

    {[
      {
        "name": "flaky grid",
        "protocol": "bmmb",
        "topology": "grid", "n": 36,
        "gprime": "r-restricted", "r": 3, "extra": 12,
        "k": 5, "fack": 20, "fprog": 1,
        "scheduler": "adversarial",
        "arrivals": "batch",
        "check": true, "repeat": 3, "seed": 1
      }
    ]}

    Protocols: ["bmmb"] (standard model; arrivals [batch]/[poisson]/
    [staggered]), ["fmmb"] (enhanced model, batch), ["fmmb-online"]
    (enhanced model, any arrivals, k-oblivious).  Topologies: [line],
    [ring], [star], [grid], [geometric].  G' regimes: [equal],
    [r-restricted], [arbitrary], [greyzone]. *)

type arrivals =
  | Batch
  | Poisson of float  (** rate *)
  | Staggered of float  (** gap *)

type dyn_spec = {
  dyn_kind : string;  (** ["static" | "flap" | "churn" | "adversary"] *)
  dyn_epoch : float;  (** stability parameter [T] (epoch length) *)
  dyn_period : int;  (** flap half-period, in epochs *)
  dyn_churn : float;  (** per-epoch per-edge drop probability *)
  dyn_seed : int;  (** churn / adversary seed *)
}
(** The resolved [dynamic] sub-object:

    {[ "dynamic": {"kind": "churn", "epoch": 5, "churn": 0.3, "seed": 7} ]}

    Unknown or ill-typed fields are rejected naming the field and the
    vocabulary ([kind, epoch, period, churn, seed]); [kind] must be one
    of [static], [flap], [churn], [adversary]; any [dynamic] requires
    [protocol = "bmmb"].  Sweeps reach inside with dotted params:
    [{"sweep": {"param": "dynamic.epoch", "values": [1, 2, 4]}}]. *)

type spec = {
  name : string;
  protocol : [ `Bmmb | `Fmmb | `Fmmb_online ];
  topology : string;
  n : int;
  gprime : string;
  r : int;
  extra : int;
  k : int;
  fack : float;
  fprog : float;
  seed : int;
  scheduler : string;
  arrivals : arrivals;
  check : bool;
  repeat : int;
  dynamic : dyn_spec option;
  domains : int;
      (** worker domains for the partitioned engine (default 1; must not
          exceed [partitions]) *)
  partitions : int;
      (** partition count P — a model parameter ([0] in the JSON means
          auto: one partition per requested domain; resolved here to
          [>= 1]).  [partitions > 1] routes batch BMMB through
          {!Runner.run_bmmb_pdes} and restricts the spec to the
          "random" scheduler, batch arrivals, and non-adversary
          dynamics. *)
}

type run_result = {
  seed : int;
  complete : bool;
  time : float;
  bound : float option;  (** the applicable exact bound (BMMB batch only) *)
  bcasts : int option;
  mean_latency : float option;  (** online runs *)
  violations : int;  (** compliance violations when [check] *)
  epochs : int option;  (** epoch windows entered (dynamic runs only) *)
}

(** {1 Building blocks} (also used by the CLI) *)

val build_dual :
  topology:string ->
  gprime:string ->
  n:int ->
  r:int ->
  extra:int ->
  seed:int ->
  (Graphs.Dual.t, string) result

val build_scheduler : string -> (int Amac.Mac_intf.policy, string) result

val build_dyn : dual:Graphs.Dual.t -> dyn_spec -> (Dyn.Dual.t, string) result
(** The versioned dual a resolved [dynamic] sub-object describes; [dual]
    is the base (union) dual from {!build_dual}. *)

(** {1 Scenario pipeline} *)

val validate : Dsim.Json.t -> (unit, string) result
(** Reject unknown fields (typos silently swallowed by defaults otherwise)
    with a message listing the full field vocabulary.  [of_json] and
    [expand] call this for you. *)

val of_json : Dsim.Json.t -> (spec, string) result
val of_string : string -> (spec, string) result

val load_file : string -> (spec list, string) result
(** Read, parse, validate, and {!expand} a scenario file; every error is
    prefixed with the file name. *)

val spec_to_json : spec -> Dsim.Json.t
(** The fully-resolved spec, every default baked in — a complete content
    address for campaign job keying. *)

val expand : Dsim.Json.t -> (spec list, string) result
(** Like {!of_json}, but honoring an optional sweep directive:
    [{"sweep": {"param": "k", "values": [1, 2, 4]}, ...}] yields one spec
    per value with the parameter overridden (params: any numeric scenario
    field — "n", "k", "r", "extra", "fack", "fprog", "seed", "rate",
    "gap").  Without a sweep, a singleton list. *)

val expand_string : string -> (spec list, string) result

val execute : spec -> (run_result list, string) result
(** One run per repeat, seeds [spec.seed, spec.seed+1, ...]. *)

val report : spec -> run_result list -> string
(** Human-readable table. *)

val result_json : spec -> run_result list -> Dsim.Json.t
(** Machine-readable results (one object per run). *)
