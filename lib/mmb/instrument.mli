(** Instrumentation hooks for {!Runner}, dependency-inverted.

    The protocol layer must not depend on the observability layer (check
    A1: [mmb] sits below [obs] in the layer DAG), yet runs need spans,
    streaming compliance, engine gauges, and global engine-cost
    accounting.  This record is the seam: {!Runner} calls these hooks at
    the right moments with no knowledge of who listens, and [Obs.Run]
    builds records wired to an [Obs.Observer] / [Obs.Global].  The
    default, {!none}, does nothing. *)

type t = {
  want_trace : bool;
      (** ask the runner to hand the MAC a (retention-free) trace even
          when compliance checking is off, so subscribers see events *)
  attach : Dsim.Trace.t -> unit;
      (** called once with the trace the MAC records into, if any *)
  wire_sim : Dsim.Sim.t -> unit;
      (** called once with the engine before the run starts *)
  on_event : (time:float -> Dsim.Trace.event -> unit) option;
      (** problem-level [Arrive]/[Deliver] lifecycle for engine-less runs
          (FMMB's round backends); unused by the continuous-time paths *)
  finish : allow_open:bool -> unit;
      (** called after the run; [allow_open] is false only when the run
          drained naturally and open instances would be a violation *)
  note_sim : Dsim.Sim.t -> unit;  (** fold engine counters into totals *)
  note_mac : bcasts:int -> rcvs:int -> acks:int -> forced:int -> unit;
}

val none : t
(** Every hook is a no-op; the default for un-instrumented runs. *)
