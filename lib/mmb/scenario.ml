type arrivals = Batch | Poisson of float | Staggered of float

type dyn_spec = {
  dyn_kind : string; (* "static" | "flap" | "churn" | "adversary" *)
  dyn_epoch : float; (* stability parameter T (epoch length) *)
  dyn_period : int; (* flap *)
  dyn_churn : float; (* churn drop rate *)
  dyn_seed : int; (* churn / adversary *)
}

type spec = {
  name : string;
  protocol : [ `Bmmb | `Fmmb | `Fmmb_online ];
  topology : string;
  n : int;
  gprime : string;
  r : int;
  extra : int;
  k : int;
  fack : float;
  fprog : float;
  seed : int;
  scheduler : string;
  arrivals : arrivals;
  check : bool;
  repeat : int;
  dynamic : dyn_spec option;
  domains : int;  (* worker domains for the partitioned engine *)
  partitions : int;  (* partition count P (resolved: >= 1) *)
}

type run_result = {
  seed : int;
  complete : bool;
  time : float;
  bound : float option;
  bcasts : int option;
  mean_latency : float option;
  violations : int;
  epochs : int option;
}

(* --- Building blocks ----------------------------------------------------- *)

let build_dual ~topology ~gprime ~n ~r ~extra ~seed =
  let rng = Dsim.Rng.create ~seed:(seed + 911) in
  match gprime with
  | "greyzone" ->
      let side = sqrt (float_of_int n /. 3.) in
      Ok
        (Graphs.Dual.grey_zone_connected rng ~n ~width:side ~height:side
           ~c:2. ~p:0.4 ~max_tries:2000)
  | regime -> (
      let base =
        match topology with
        | "line" -> Ok (Graphs.Gen.line n)
        | "ring" -> Ok (Graphs.Gen.ring (max 3 n))
        | "star" -> Ok (Graphs.Gen.star n)
        | "grid" ->
            let side = int_of_float (ceil (sqrt (float_of_int n))) in
            Ok (Graphs.Gen.grid ~rows:side ~cols:side)
        | "geometric" ->
            let side = sqrt (float_of_int n /. 3.) in
            let g, _ =
              Graphs.Gen.random_connected_geometric rng ~n ~width:side
                ~height:side ~radius:1. ~max_tries:2000
            in
            Ok g
        | other -> Error (Printf.sprintf "unknown topology %S" other)
      in
      match base with
      | Error e -> Error e
      | Ok g -> (
          match regime with
          | "equal" -> Ok (Graphs.Dual.of_equal g)
          | "r-restricted" ->
              Ok (Graphs.Dual.r_restricted_random rng ~g ~r ~extra)
          | "arbitrary" -> Ok (Graphs.Dual.arbitrary_random rng ~g ~extra)
          | other -> Error (Printf.sprintf "unknown G' regime %S" other)))

let build_scheduler = function
  | "eager" -> Ok (Amac.Schedulers.eager ())
  | "random" -> Ok (Amac.Schedulers.random_compliant ())
  | "adversarial" -> Ok (Amac.Schedulers.adversarial ())
  | "bursty" -> Ok (Amac.Schedulers.bursty ())
  | other -> Error (Printf.sprintf "unknown scheduler %S" other)

(* The versioned dual a resolved [dynamic] sub-object describes, over the
   base (union) dual the static builders produced. *)
let build_dyn ~dual dspec =
  match dspec.dyn_kind with
  | "static" -> Ok (Dyn.Dual.of_static dual)
  | "flap" ->
      Ok
        (Dyn.Dual.of_schedule
           (Dyn.Schedule.flap ~base:dual ~epoch_len:dspec.dyn_epoch
              ~period:dspec.dyn_period))
  | "churn" ->
      Ok
        (Dyn.Dual.of_schedule
           (Dyn.Schedule.churn ~base:dual ~epoch_len:dspec.dyn_epoch
              ~rate:dspec.dyn_churn ~seed:dspec.dyn_seed))
  | "adversary" ->
      Ok
        (Dyn.Dual.of_schedule
           (Dyn.Schedule.adversary ~base:dual ~epoch_len:dspec.dyn_epoch
              ~seed:dspec.dyn_seed))
  | other ->
      Error
        (Printf.sprintf
           "unknown dynamic kind %S; known kinds: static, flap, churn, \
            adversary"
           other)

(* --- Parsing -------------------------------------------------------------- *)

let ( let* ) = Result.bind

(* Every field a scenario object may carry.  Anything else is almost
   certainly a typo silently replaced by a default, so we reject it with
   the full vocabulary instead of guessing. *)
let known_fields =
  [
    "name"; "protocol"; "topology"; "n"; "gprime"; "r"; "extra"; "k"; "fack";
    "fprog"; "seed"; "scheduler"; "arrivals"; "rate"; "gap"; "check";
    "repeat"; "sweep"; "dynamic"; "domains"; "partitions";
  ]

let dynamic_fields = [ "kind"; "epoch"; "period"; "churn"; "seed" ]
let dynamic_kinds = [ "static"; "flap"; "churn"; "adversary" ]

let validate json =
  match json with
  | Dsim.Json.Obj members -> (
      let unknown =
        List.filter (fun (k, _) -> not (List.mem k known_fields)) members
      in
      match unknown with
      | (k, _) :: _ ->
          Error
            (Printf.sprintf "unknown field %S; known fields: %s" k
               (String.concat ", " known_fields))
      | [] -> (
          let* () =
            match Dsim.Json.member_opt json "dynamic" with
            | None | Some Dsim.Json.Null -> Ok ()
            | Some (Dsim.Json.Obj dyn_members) -> (
                match
                  List.filter
                    (fun (k, _) -> not (List.mem k dynamic_fields))
                    dyn_members
                with
                | (k, _) :: _ ->
                    Error
                      (Printf.sprintf
                         "dynamic: unknown field %S; known fields: %s" k
                         (String.concat ", " dynamic_fields))
                | [] -> Ok ())
            | Some _ -> Error "field \"dynamic\" must be an object"
          in
          match Dsim.Json.member_opt json "sweep" with
          | None | Some Dsim.Json.Null -> Ok ()
          | Some (Dsim.Json.Obj sweep_members) -> (
              match
                List.filter
                  (fun (k, _) -> k <> "param" && k <> "values")
                  sweep_members
              with
              | (k, _) :: _ ->
                  Error
                    (Printf.sprintf
                       "sweep: unknown field %S (a sweep object takes \
                        \"param\" and \"values\")"
                       k)
              | [] -> Ok ())
          | Some _ -> Error "field \"sweep\" must be an object"))
  | _ -> Error "a scenario must be a JSON object"

let of_json json =
  let* () = validate json in
  let* name = Dsim.Json.member_str json "name" ~default:"scenario" in
  let* protocol_str = Dsim.Json.member_str json "protocol" ~default:"bmmb" in
  let* protocol =
    match protocol_str with
    | "bmmb" -> Ok `Bmmb
    | "fmmb" -> Ok `Fmmb
    | "fmmb-online" -> Ok `Fmmb_online
    | other -> Error (Printf.sprintf "unknown protocol %S" other)
  in
  let* topology = Dsim.Json.member_str json "topology" ~default:"line" in
  let* n = Dsim.Json.member_int json "n" ~default:30 in
  let* gprime = Dsim.Json.member_str json "gprime" ~default:"equal" in
  let* r = Dsim.Json.member_int json "r" ~default:2 in
  let* extra = Dsim.Json.member_int json "extra" ~default:10 in
  let* k = Dsim.Json.member_int json "k" ~default:4 in
  let* fack = Dsim.Json.member_float json "fack" ~default:20. in
  let* fprog = Dsim.Json.member_float json "fprog" ~default:1. in
  let* seed = Dsim.Json.member_int json "seed" ~default:1 in
  let* scheduler = Dsim.Json.member_str json "scheduler" ~default:"random" in
  let* arrivals_str = Dsim.Json.member_str json "arrivals" ~default:"batch" in
  let* arrivals =
    match arrivals_str with
    | "batch" -> Ok Batch
    | "poisson" ->
        let* rate = Dsim.Json.member_float json "rate" ~default:0.01 in
        Ok (Poisson rate)
    | "staggered" ->
        let* gap = Dsim.Json.member_float json "gap" ~default:10. in
        Ok (Staggered gap)
    | other -> Error (Printf.sprintf "unknown arrivals %S" other)
  in
  let* check =
    match Dsim.Json.member_opt json "check" with
    | None -> Ok false
    | Some v -> Dsim.Json.to_bool v
  in
  let* repeat = Dsim.Json.member_int json "repeat" ~default:1 in
  let* dynamic =
    match Dsim.Json.member_opt json "dynamic" with
    | None | Some Dsim.Json.Null -> Ok None
    | Some dyn ->
        let* dyn_kind = Dsim.Json.member_str dyn "kind" ~default:"static" in
        let* () =
          if List.mem dyn_kind dynamic_kinds then Ok ()
          else
            Error
              (Printf.sprintf "dynamic: unknown kind %S; known kinds: %s"
                 dyn_kind
                 (String.concat ", " dynamic_kinds))
        in
        let* dyn_epoch = Dsim.Json.member_float dyn "epoch" ~default:10. in
        let* dyn_period = Dsim.Json.member_int dyn "period" ~default:1 in
        let* dyn_churn = Dsim.Json.member_float dyn "churn" ~default:0.2 in
        let* dyn_seed = Dsim.Json.member_int dyn "seed" ~default:0 in
        if not (dyn_epoch > 0.) then Error "dynamic: need epoch > 0"
        else if dyn_period < 1 then Error "dynamic: need period >= 1"
        else if not (dyn_churn >= 0. && dyn_churn <= 1.) then
          Error "dynamic: need churn in [0, 1]"
        else Ok (Some { dyn_kind; dyn_epoch; dyn_period; dyn_churn; dyn_seed })
  in
  let* domains = Dsim.Json.member_int json "domains" ~default:1 in
  (* [partitions] 0 means auto: one partition per requested domain.  The
     resolution uses the *requested* count (never the machine's core
     count), so the resolved spec — a campaign cache key — is identical
     on every host. *)
  let* partitions = Dsim.Json.member_int json "partitions" ~default:0 in
  let partitions = if partitions = 0 then max domains 1 else partitions in
  if n < 1 then Error "need n >= 1"
  else if k < 0 then Error "need k >= 0"
  else if repeat < 1 then Error "need repeat >= 1"
  else if not (fprog > 0. && fprog <= fack) then
    Error "need 0 < fprog <= fack"
  else if dynamic <> None && protocol <> `Bmmb then
    Error
      "dynamic: protocol must be \"bmmb\" (FMMB's per-stage engines do not \
       take epoch schedules)"
  else if domains < 1 then Error "need domains >= 1"
  else if partitions < 1 then Error "need partitions >= 0 (0 = auto)"
  else if domains > partitions then
    Error
      (Printf.sprintf
         "domains-exceed-partitions: %d worker domains cannot be mapped \
          onto %d partition(s); raise \"partitions\" or lower \"domains\""
         domains partitions)
  else if partitions > 1 && protocol <> `Bmmb then
    Error "partitions: the partitioned engine runs protocol \"bmmb\" only"
  else if
    partitions > 1 && (match arrivals with Batch -> false | _ -> true)
  then
    Error "partitions: the partitioned engine is batch-arrivals only"
  else if partitions > 1 && scheduler <> "random" then
    Error
      (Printf.sprintf
         "partitions: the partitioned engine fixes the \"random\" \
          scheduler family (got %S)"
         scheduler)
  else if
    partitions > 1
    && (match dynamic with
       | Some d -> d.dyn_kind = "adversary"
       | None -> false)
  then
    Error
      "partitions: the adversary oracle needs global delivered-set \
       knowledge and cannot be partitioned; use kind static, flap, or churn"
  else
    Ok
      {
        name;
        protocol;
        topology;
        n;
        gprime;
        r;
        extra;
        k;
        fack;
        fprog;
        seed;
        scheduler;
        arrivals;
        check;
        repeat;
        dynamic;
        domains;
        partitions;
      }

let of_string text =
  let* json = Dsim.Json.parse text in
  of_json json

let override json key value =
  match json with
  | Dsim.Json.Obj members ->
      Dsim.Json.Obj ((key, value) :: List.remove_assoc key members)
  | other -> other

(* Dotted sweep params ("dynamic.epoch", "dynamic.churn") override inside
   the named sub-object, creating it if absent. *)
let override_path json param value =
  match String.index_opt param '.' with
  | None -> override json param value
  | Some i ->
      let outer = String.sub param 0 i in
      let inner = String.sub param (i + 1) (String.length param - i - 1) in
      let sub =
        match Dsim.Json.member_opt json outer with
        | Some (Dsim.Json.Obj _ as o) -> o
        | _ -> Dsim.Json.Obj []
      in
      override json outer (override sub inner value)

let expand json =
  let* () = validate json in
  match Dsim.Json.member_opt json "sweep" with
  | None ->
      let* spec = of_json json in
      Ok [ spec ]
  | Some sweep ->
      let* param = Dsim.Json.member_str sweep "param" ~default:"" in
      if param = "" then Error "sweep: missing \"param\""
      else
        let* values =
          match Dsim.Json.member sweep "values" with
          | Ok v -> Dsim.Json.to_list v
          | Error e -> Error e
        in
        if values = [] then Error "sweep: empty \"values\""
        else begin
          let base = override json "sweep" Dsim.Json.Null in
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | v :: rest -> (
                match v with
                | Dsim.Json.Number x ->
                    let named =
                      override
                        (override_path base param (Dsim.Json.Number x))
                        "name"
                        (Dsim.Json.String
                           (Printf.sprintf "%s [%s=%s]"
                              (match Dsim.Json.member_opt json "name" with
                              | Some (Dsim.Json.String s) -> s
                              | _ -> "scenario")
                              param
                              (Dsim.Json.to_string (Dsim.Json.Number x))))
                    in
                    let* spec = of_json named in
                    go (spec :: acc) rest
                | _ -> Error "sweep: values must be numbers")
          in
          go [] values
        end

let expand_string text =
  let* json = Dsim.Json.parse text in
  expand json

let load_file path =
  let* text =
    try
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> Ok (really_input_string ic (in_channel_length ic)))
    with Sys_error e -> Error e
  in
  match expand_string text with
  | Ok specs -> Ok specs
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

(* The fully-resolved spec as JSON: every default baked in, so it is a
   complete content address for campaign job keying (two scenario files
   that elaborate to the same spec share cache entries). *)
let spec_to_json spec =
  let num_i i = Dsim.Json.Number (float_of_int i) in
  Dsim.Json.Obj
    ([
       ("name", Dsim.Json.String spec.name);
       ( "protocol",
         Dsim.Json.String
           (match spec.protocol with
           | `Bmmb -> "bmmb"
           | `Fmmb -> "fmmb"
           | `Fmmb_online -> "fmmb-online") );
       ("topology", Dsim.Json.String spec.topology);
       ("n", num_i spec.n);
       ("gprime", Dsim.Json.String spec.gprime);
       ("r", num_i spec.r);
       ("extra", num_i spec.extra);
       ("k", num_i spec.k);
       ("fack", Dsim.Json.Number spec.fack);
       ("fprog", Dsim.Json.Number spec.fprog);
       ("seed", num_i spec.seed);
       ("scheduler", Dsim.Json.String spec.scheduler);
       ( "arrivals",
         Dsim.Json.String
           (match spec.arrivals with
           | Batch -> "batch"
           | Poisson _ -> "poisson"
           | Staggered _ -> "staggered") );
     ]
    @ (match spec.arrivals with
      | Poisson rate -> [ ("rate", Dsim.Json.Number rate) ]
      | Staggered gap -> [ ("gap", Dsim.Json.Number gap) ]
      | Batch -> [])
    @ [
        ("check", Dsim.Json.Bool spec.check); ("repeat", num_i spec.repeat);
        ("domains", num_i spec.domains);
        ("partitions", num_i spec.partitions);
      ]
    @
    match spec.dynamic with
    | None -> []
    | Some d ->
        [
          ( "dynamic",
            Dsim.Json.Obj
              [
                ("kind", Dsim.Json.String d.dyn_kind);
                ("epoch", Dsim.Json.Number d.dyn_epoch);
                ("period", num_i d.dyn_period);
                ("churn", Dsim.Json.Number d.dyn_churn);
                ("seed", num_i d.dyn_seed);
              ] );
        ])

(* --- Execution ------------------------------------------------------------ *)

let run_once spec ~seed =
  let* dual =
    build_dual ~topology:spec.topology ~gprime:spec.gprime ~n:spec.n ~r:spec.r
      ~extra:spec.extra ~seed
  in
  let n = Graphs.Dual.n dual in
  let rng = Dsim.Rng.create ~seed:(seed + 13) in
  match spec.protocol with
  | `Bmmb -> (
      let* policy = build_scheduler spec.scheduler in
      let* dyn =
        match spec.dynamic with
        | None -> Ok None
        | Some d ->
            let* dd = build_dyn ~dual d in
            Ok (Some dd)
      in
      (* Epoch windows entered by the end of the run (1 for static). *)
      let epochs_of () = Option.map (fun d -> Dyn.Dual.epoch d + 1) dyn in
      match spec.arrivals with
      | Batch when spec.partitions > 1 ->
          (* Partitioned engine: [dyn] above is discarded in favor of a
             per-partition factory (each partition owns a private
             wrapper; validation already rejected the adversary). *)
          let assignment = Problem.random rng ~n ~k:spec.k in
          let mk_dyn =
            Option.map
              (fun d () ->
                match build_dyn ~dual d with
                | Ok dd -> dd
                | Error e -> failwith e)
              spec.dynamic
          in
          let res =
            Runner.run_bmmb_pdes ~dual ~fack:spec.fack ~fprog:spec.fprog
              ~policy ~assignment ~seed ~partitions:spec.partitions
              ~domains:spec.domains ?mk_dyn ()
          in
          Ok
            {
              seed;
              complete = res.Runner.pd_complete;
              time = res.Runner.pd_time;
              bound = Some res.Runner.pd_upper_bound;
              bcasts = Some res.Runner.pd_bcasts;
              mean_latency = None;
              violations = 0;
              epochs = None;
            }
      | Batch ->
          let assignment = Problem.random rng ~n ~k:spec.k in
          let res =
            Runner.run_bmmb ~dual ~fack:spec.fack ~fprog:spec.fprog ~policy
              ~assignment ~seed ~check_compliance:spec.check ?dyn ()
          in
          Ok
            {
              seed;
              complete = res.Runner.complete;
              time = res.Runner.time;
              bound = Some res.Runner.upper_bound;
              bcasts = Some res.Runner.bcasts;
              mean_latency = None;
              violations = List.length res.Runner.compliance_violations;
              epochs = epochs_of ();
            }
      | Poisson _ | Staggered _ ->
          let arrivals =
            match spec.arrivals with
            | Poisson rate -> Problem.poisson_arrivals rng ~n ~k:spec.k ~rate
            | Staggered gap ->
                Problem.staggered_arrivals ~node:(Dsim.Rng.int rng n)
                  ~k:spec.k ~gap
            | Batch -> assert false
          in
          let res =
            Runner.run_bmmb_online ~dual ~fack:spec.fack ~fprog:spec.fprog
              ~policy ~arrivals ~seed ~check_compliance:spec.check ?dyn ()
          in
          Ok
            {
              seed;
              complete = res.Runner.complete';
              time = res.Runner.makespan;
              bound = None;
              bcasts = Some res.Runner.bcasts';
              mean_latency = Some res.Runner.mean_latency;
              violations = List.length res.Runner.compliance_violations';
              epochs = epochs_of ();
            })
  | `Fmmb -> (
      match spec.arrivals with
      | Batch ->
          let assignment = Problem.random rng ~n ~k:spec.k in
          let res =
            Runner.run_fmmb ~dual ~fprog:spec.fprog ~c:2.
              ~policy:(Amac.Enhanced_mac.minimal_random ())
              ~assignment ~seed ()
          in
          Ok
            {
              seed;
              complete = res.Runner.fmmb.Fmmb.complete;
              time = res.Runner.fmmb.Fmmb.time;
              bound = None;
              bcasts = None;
              mean_latency = None;
              violations = 0;
              epochs = None;
            }
      | _ -> Error "protocol fmmb supports batch arrivals only (use fmmb-online)")
  | `Fmmb_online ->
      let arrivals =
        match spec.arrivals with
        | Batch -> Problem.at_time_zero (Problem.random rng ~n ~k:spec.k)
        | Poisson rate -> Problem.poisson_arrivals rng ~n ~k:spec.k ~rate
        | Staggered gap ->
            Problem.staggered_arrivals ~node:(Dsim.Rng.int rng n) ~k:spec.k
              ~gap
      in
      let tracker = Problem.tracker_timed ~dual arrivals in
      let res =
        Fmmb_online.run ~dual ~fprog:spec.fprog
          ~rng:(Dsim.Rng.create ~seed:(seed + 31))
          ~policy:(Amac.Enhanced_mac.minimal_random ())
          ~c:2. ~arrivals ~tracker ~max_rounds:1_000_000 ()
      in
      let latencies =
        List.filter_map
          (fun (_, _, msg) -> Problem.message_latency tracker ~msg)
          arrivals
      in
      let mean_latency =
        match latencies with
        | [] -> None
        | ls ->
            Some
              (List.fold_left ( +. ) 0. ls /. float_of_int (List.length ls))
      in
      Ok
        {
          seed;
          complete = res.Fmmb_online.complete;
          time = res.Fmmb_online.time;
          bound = None;
          bcasts = None;
          mean_latency;
          violations = 0;
          epochs = None;
        }

let execute spec =
  let rec go acc i =
    if i >= spec.repeat then Ok (List.rev acc)
    else
      let* run = run_once spec ~seed:(spec.seed + i) in
      go (run :: acc) (i + 1)
  in
  go [] 0

(* --- Reporting ------------------------------------------------------------ *)

let report spec runs =
  let buf = Buffer.create 512 in
  let dyn = spec.dynamic <> None in
  Buffer.add_string buf (Printf.sprintf "scenario: %s\n" spec.name);
  Buffer.add_string buf
    (Printf.sprintf "%6s %9s %10s %10s %8s %9s %6s%s\n" "seed" "complete"
       "time" "bound" "bcasts" "latency" "viols"
       (if dyn then Printf.sprintf " %7s" "epochs" else ""));
  List.iter
    (fun r ->
      let opt_f = function Some f -> Printf.sprintf "%.1f" f | None -> "-" in
      let opt_i = function Some i -> string_of_int i | None -> "-" in
      Buffer.add_string buf
        (Printf.sprintf "%6d %9b %10.1f %10s %8s %9s %6d%s\n" r.seed r.complete
           r.time (opt_f r.bound) (opt_i r.bcasts) (opt_f r.mean_latency)
           r.violations
           (if dyn then Printf.sprintf " %7s" (opt_i r.epochs) else "")))
    runs;
  let times = List.map (fun r -> r.time) runs in
  (match times with
  | [] -> ()
  | _ ->
      let s = Dsim.Stats.summarize times in
      Buffer.add_string buf
        (Fmt.str "summary: time %a@." Dsim.Stats.pp_summary s));
  Buffer.contents buf

let result_json spec runs =
  let run_to_json r =
    Dsim.Json.Obj
      ([
         ("seed", Dsim.Json.Number (float_of_int r.seed));
         ("complete", Dsim.Json.Bool r.complete);
         ("time", Dsim.Json.Number r.time);
         ("violations", Dsim.Json.Number (float_of_int r.violations));
       ]
      @ (match r.bound with
        | Some b -> [ ("bound", Dsim.Json.Number b) ]
        | None -> [])
      @ (match r.bcasts with
        | Some b -> [ ("bcasts", Dsim.Json.Number (float_of_int b)) ]
        | None -> [])
      @ (match r.mean_latency with
        | Some l -> [ ("mean_latency", Dsim.Json.Number l) ]
        | None -> [])
      @
      match r.epochs with
      | Some e -> [ ("epochs", Dsim.Json.Number (float_of_int e)) ]
      | None -> [])
  in
  Dsim.Json.Obj
    [
      ("name", Dsim.Json.String spec.name);
      ("runs", Dsim.Json.List (List.map run_to_json runs));
    ]
