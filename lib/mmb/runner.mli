(** End-to-end wiring: network × protocol × scheduler → executed run with
    metrics.  This is the entry point examples, tests, and benchmarks use. *)

type bmmb_result = {
  complete : bool;
  time : float;  (** MMB completion time (meaningful when [complete]) *)
  upper_bound : float;  (** the exact applicable paper bound for this run *)
  within_bound : bool;
  bcasts : int;
  rcvs : int;
  acks : int;
  forced : int;  (** watchdog-injected progress deliveries *)
  duplicate_deliveries : int;  (** MMB spec violations (must be 0) *)
  compliance_violations : Amac.Compliance.violation list;
      (** non-empty only when [check_compliance] and the engine misbehaved *)
  outcome : Dsim.Sim.outcome;
  events_executed : int;
      (** engine callbacks executed (the profiler's event count) *)
  message_times : (int * float) list;
      (** per-message completion times (msg id, time), completed ones only *)
  trace : Dsim.Trace.t option;
      (** the recorded execution trace, when [check_compliance] was set *)
  spec_violations : string list;
      (** MMB-specification findings ({!Properties.check}), when
          [check_compliance] was set *)
}

val run_bmmb :
  dual:Graphs.Dual.t ->
  fack:float ->
  fprog:float ->
  policy:int Amac.Mac_intf.policy ->
  assignment:Problem.assignment ->
  seed:int ->
  ?discipline:Bmmb.discipline ->
  ?check_compliance:bool ->
  ?max_events:int ->
  ?dyn:Dyn.Dual.t ->
  ?instrument:Instrument.t ->
  ?setup:(Dsim.Sim.t -> unit) ->
  unit ->
  bmmb_result
(** Runs BMMB to natural quiescence (the protocol terminates on its own once
    every queue drains), so the full execution — including the tail after
    completion — is audited when [check_compliance] is set.
    [max_events] (default [50_000_000]) is a runaway backstop.

    [dyn] hands the MAC a time-varying unreliable layer ([dual] must be
    its base/union dual).  The protocol is untouched — epochs advance
    only inside the MAC's plan-time consult (check A6) — and the static
    post-hoc audit stays sound because every epoch's G' is a subset of
    the base.

    [instrument] (default {!Instrument.none}) receives the MAC's trace,
    the engine, the run's counter totals, and a finish signal with
    [allow_open] set iff the run did not drain — [Obs.Run] builds
    instruments wired to observers and the global engine-cost registry;
    this layer knows nothing about them (check A1).  [setup] runs against
    the simulation after wiring but before the arrivals are scheduled —
    the hook for progress tickers and wall-clock injection. *)

(** {1 Partitioned BMMB (lib/pdes)} *)

type pdes_result = {
  pd_complete : bool;
  pd_time : float;
  pd_upper_bound : float;
  pd_within_bound : bool;
  pd_bcasts : int;
  pd_rcvs : int;
  pd_acks : int;
  pd_deliveries : int;  (** distinct (node, message) deliveries *)
  pd_remote : int;  (** deliveries routed across partitions *)
  pd_events : int;
  pd_windows : int;  (** barrier windows (0 on the serial path) *)
  pd_heap_high_water : int;  (** max pending events in any partition heap *)
  pd_partitions : int;
  pd_domains : int;
  pd_cut_edges : int;
  pd_trace_entries : int;  (** lines written to [trace_out] *)
}

val run_bmmb_pdes :
  dual:Graphs.Dual.t ->
  fack:float ->
  fprog:float ->
  policy:int Amac.Mac_intf.policy ->
  assignment:Problem.assignment ->
  seed:int ->
  partitions:int ->
  domains:int ->
  ?mk_dyn:(unit -> Dyn.Dual.t) ->
  ?trace_out:string ->
  unit ->
  pdes_result
(** BMMB on the horizon-parallel engine ({!Pdes.Engine}).  [partitions]
    is a model parameter: it selects the execution (instance ids, RNG
    streams, delivery times), and [domains] only maps partitions onto
    worker domains — results and [trace_out] bytes are identical for
    every [1 <= domains <= partitions].  [partitions = 1] delegates to
    {!run_bmmb} with [policy] (the exact serial engine and trace);
    [partitions >= 2] runs the fused full-coverage engine and ignores
    [policy].  [mk_dyn] builds one private dynamic wrapper per
    partition.  Raises {!Pdes.Engine.Domains_exceed_partitions} when
    [domains > partitions] and [Invalid_argument] when [Fprog > Fack]. *)

(** {1 Online MMB}

    The general MMB variant of footnote 4: messages arrive over time.  The
    static theorems do not apply; the interesting metrics are per-message
    latencies (completion − arrival). *)

type online_result = {
  complete' : bool;
  makespan : float;  (** time when the last message finished *)
  latencies : (int * float) list;  (** per completed message *)
  mean_latency : float;
  max_latency : float;
  bcasts' : int;
  forced' : int;
  compliance_violations' : Amac.Compliance.violation list;
}

val run_bmmb_online :
  dual:Graphs.Dual.t ->
  fack:float ->
  fprog:float ->
  policy:int Amac.Mac_intf.policy ->
  arrivals:Problem.timed_assignment ->
  seed:int ->
  ?discipline:Bmmb.discipline ->
  ?check_compliance:bool ->
  ?max_events:int ->
  ?dyn:Dyn.Dual.t ->
  ?instrument:Instrument.t ->
  ?setup:(Dsim.Sim.t -> unit) ->
  unit ->
  online_result
(** BMMB with arrivals injected at their own times (the protocol is
    unchanged — it is event-driven and never assumed batch arrivals).
    [dyn] as in {!run_bmmb}. *)

type fmmb_result = {
  fmmb : Fmmb.result;
  shape_bound : float;
      (** the unit-coefficient Theorem-4.1 round shape for this instance *)
  duplicate_deliveries' : int;
}

val run_fmmb :
  dual:Graphs.Dual.t ->
  fprog:float ->
  c:float ->
  policy:Fmmb_msg.t Amac.Enhanced_mac.round_policy ->
  assignment:Problem.assignment ->
  seed:int ->
  ?backend:Fmmb.backend ->
  ?params:Fmmb.params ->
  ?max_spread_phases:int ->
  ?instrument:Instrument.t ->
  unit ->
  fmmb_result
(** The problem-level [Arrive]/[Deliver] lifecycle feeds
    [instrument.on_event] (stage-granular times); [Obs.Run.fmmb] points
    it at an observer's spans.  The streaming compliance monitor does not
    apply to FMMB (per-stage engines restart instance uids and clocks). *)
