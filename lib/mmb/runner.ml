type bmmb_result = {
  complete : bool;
  time : float;
  upper_bound : float;
  within_bound : bool;
  bcasts : int;
  rcvs : int;
  acks : int;
  forced : int;
  duplicate_deliveries : int;
  compliance_violations : Amac.Compliance.violation list;
  outcome : Dsim.Sim.outcome;
  events_executed : int;
  message_times : (int * float) list;
  trace : Dsim.Trace.t option;
  spec_violations : string list;
}

(* BMMB payloads are the MMB message ids themselves, so the trace's [msg]
   fields carry them directly and spans can follow arrive -> bcast. *)
let bmmb_msg_id (m : int) = m

(* The trace handed to the MAC: the retained one when auditing post-hoc,
   else a retention-free trace that only feeds the instrument's
   subscribers. *)
let pick_trace ~retained ~(instrument : Instrument.t) =
  match retained with
  | Some tr -> Some tr
  | None ->
      if instrument.Instrument.want_trace then
        Some (Dsim.Trace.create ~enabled:false ())
      else None

let run_bmmb ~dual ~fack ~fprog ~policy ~assignment ~seed
    ?(discipline = `Fifo) ?(check_compliance = false)
    ?(max_events = 50_000_000) ?dyn ?(instrument = Instrument.none) ?setup () =
  let sim = Dsim.Sim.create () in
  let rng = Dsim.Rng.create ~seed in
  let retained =
    if check_compliance then Some (Dsim.Trace.create ()) else None
  in
  let trace = pick_trace ~retained ~instrument in
  (match trace with Some tr -> instrument.Instrument.attach tr | None -> ());
  instrument.Instrument.wire_sim sim;
  let mac =
    Amac.Standard_mac.create ~sim ~dual ~fack ~fprog ~policy ~rng ?dyn ?trace
      ~msg_id:bmmb_msg_id ()
  in
  let tracker = Problem.tracker ~dual assignment in
  let bmmb =
    Bmmb.install ~discipline ~mac:(Amac.Mac_handle.of_standard mac)
      ~on_deliver:(fun ~node ~msg ~time ->
        Problem.on_deliver tracker ~node ~msg ~time)
      ()
  in
  (match setup with Some f -> f sim | None -> ());
  List.iter
    (fun (node, msg) ->
      Amac.Standard_mac.env_at mac ~time:0. (fun () ->
          Bmmb.arrive bmmb ~node ~msg))
    assignment;
  let outcome = Dsim.Sim.run ~max_events sim in
  let bcasts = Amac.Standard_mac.bcast_count mac in
  let rcvs = Amac.Standard_mac.rcv_count mac in
  let acks = Amac.Standard_mac.ack_count mac in
  let forced = Amac.Standard_mac.forced_count mac in
  instrument.Instrument.note_sim sim;
  instrument.Instrument.note_mac ~bcasts ~rcvs ~acks ~forced;
  instrument.Instrument.finish
    ~allow_open:(outcome <> Dsim.Sim.Drained);
  let violations =
    match retained with
    | None -> []
    | Some tr -> Amac.Compliance.audit ~dual ~fack ~fprog tr
  in
  let upper_bound = Bounds.bmmb_upper ~dual ~assignment ~fack ~fprog in
  let time =
    match Problem.completion_time tracker with
    | Some t -> t
    | None -> Float.infinity
  in
  let tolerance = 1e-6 *. Float.max 1. upper_bound in
  {
    complete = Problem.complete tracker;
    time;
    upper_bound;
    within_bound = Problem.complete tracker && time <= upper_bound +. tolerance;
    bcasts;
    rcvs;
    acks;
    forced;
    duplicate_deliveries = Problem.duplicate_deliveries tracker;
    compliance_violations = violations;
    outcome;
    events_executed = Dsim.Sim.executed_events sim;
    message_times =
      List.filter_map
        (fun (_, msg) ->
          match Problem.message_completion_time tracker ~msg with
          | Some t -> Some (msg, t)
          | None -> None)
        assignment;
    trace = retained;
    spec_violations =
      (match retained with
      | None -> []
      | Some tr -> Properties.check ~dual tr);
  }

type pdes_result = {
  pd_complete : bool;
  pd_time : float;
  pd_upper_bound : float;
  pd_within_bound : bool;
  pd_bcasts : int;
  pd_rcvs : int;
  pd_acks : int;
  pd_deliveries : int;
  pd_remote : int;
  pd_events : int;
  pd_windows : int;
  pd_heap_high_water : int;
  pd_partitions : int;
  pd_domains : int;
  pd_cut_edges : int;
  pd_trace_entries : int;
}

(* The partitioned engine is its own deterministic execution, so P = 1
   does not approximate the serial engine — it *is* the serial engine:
   we delegate to [run_bmmb] (same policy, same RNG stream, same trace
   bytes) and only P >= 2 runs the horizon-parallel path.  Either way
   the result is audited against the same paper bound. *)
let run_bmmb_pdes ~dual ~fack ~fprog ~policy ~assignment ~seed ~partitions
    ~domains ?mk_dyn ?trace_out () =
  if fprog > fack then
    invalid_arg "run_bmmb_pdes: Fprog must not exceed Fack (ack bound)";
  let upper_bound = Bounds.bmmb_upper ~dual ~assignment ~fack ~fprog in
  let tolerance = 1e-6 *. Float.max 1. upper_bound in
  if partitions = 1 then begin
    if domains <> 1 then
      raise (Pdes.Engine.Domains_exceed_partitions { domains; partitions });
    let dyn = Option.map (fun f -> f ()) mk_dyn in
    let r =
      run_bmmb ~dual ~fack ~fprog ~policy ~assignment ~seed
        ~check_compliance:(trace_out <> None) ?dyn ()
    in
    let trace_entries =
      match (trace_out, r.trace) with
      | Some path, Some tr ->
          Dsim.Trace_io.write_file tr ~path;
          Dsim.Trace.length tr
      | _ -> 0
    in
    {
      pd_complete = r.complete;
      pd_time = r.time;
      pd_upper_bound = upper_bound;
      pd_within_bound = r.within_bound;
      pd_bcasts = r.bcasts;
      pd_rcvs = r.rcvs;
      pd_acks = r.acks;
      pd_deliveries =
        (* The serial result tracks completion, not a delivery count;
           report the exact total when complete (n*k by definition). *)
        (if r.complete then Graphs.Dual.n dual * List.length assignment
         else 0);
      pd_remote = 0;
      pd_events = r.events_executed;
      pd_windows = 0;
      pd_heap_high_water = 0;
      pd_partitions = 1;
      pd_domains = 1;
      pd_cut_edges = 0;
      pd_trace_entries = trace_entries;
    }
  end
  else begin
    let r =
      Pdes.Engine.run ~dual ?mk_dyn ~fprog ~assignment ~seed ~partitions
        ~domains ?trace_out ()
    in
    {
      pd_complete = r.Pdes.Engine.complete;
      pd_time = r.Pdes.Engine.time;
      pd_upper_bound = upper_bound;
      pd_within_bound =
        r.Pdes.Engine.complete
        && r.Pdes.Engine.time <= upper_bound +. tolerance;
      pd_bcasts = r.Pdes.Engine.bcasts;
      pd_rcvs = r.Pdes.Engine.rcvs;
      pd_acks = r.Pdes.Engine.acks;
      pd_deliveries = r.Pdes.Engine.deliveries;
      pd_remote = r.Pdes.Engine.remote_deliveries;
      pd_events = r.Pdes.Engine.events;
      pd_windows = r.Pdes.Engine.windows;
      pd_heap_high_water = r.Pdes.Engine.heap_high_water;
      pd_partitions = partitions;
      pd_domains = domains;
      pd_cut_edges = r.Pdes.Engine.cut_edges;
      pd_trace_entries = r.Pdes.Engine.trace_entries;
    }
  end

type online_result = {
  complete' : bool;
  makespan : float;
  latencies : (int * float) list;
  mean_latency : float;
  max_latency : float;
  bcasts' : int;
  forced' : int;
  compliance_violations' : Amac.Compliance.violation list;
}

let run_bmmb_online ~dual ~fack ~fprog ~policy ~arrivals ~seed
    ?(discipline = `Fifo) ?(check_compliance = false)
    ?(max_events = 50_000_000) ?dyn ?(instrument = Instrument.none) ?setup () =
  let sim = Dsim.Sim.create () in
  let rng = Dsim.Rng.create ~seed in
  let retained =
    if check_compliance then Some (Dsim.Trace.create ()) else None
  in
  let trace = pick_trace ~retained ~instrument in
  (match trace with Some tr -> instrument.Instrument.attach tr | None -> ());
  instrument.Instrument.wire_sim sim;
  let mac =
    Amac.Standard_mac.create ~sim ~dual ~fack ~fprog ~policy ~rng ?dyn ?trace
      ~msg_id:bmmb_msg_id ()
  in
  let tracker = Problem.tracker_timed ~dual arrivals in
  let bmmb =
    Bmmb.install ~discipline ~mac:(Amac.Mac_handle.of_standard mac)
      ~on_deliver:(fun ~node ~msg ~time ->
        Problem.on_deliver tracker ~node ~msg ~time)
      ()
  in
  (match setup with Some f -> f sim | None -> ());
  List.iter
    (fun (time, node, msg) ->
      Amac.Standard_mac.env_at mac ~time (fun () ->
          Bmmb.arrive bmmb ~node ~msg))
    arrivals;
  let outcome = Dsim.Sim.run ~max_events sim in
  instrument.Instrument.note_sim sim;
  instrument.Instrument.note_mac
    ~bcasts:(Amac.Standard_mac.bcast_count mac)
    ~rcvs:(Amac.Standard_mac.rcv_count mac)
    ~acks:(Amac.Standard_mac.ack_count mac)
    ~forced:(Amac.Standard_mac.forced_count mac);
  instrument.Instrument.finish
    ~allow_open:(outcome <> Dsim.Sim.Drained);
  let latencies =
    List.filter_map
      (fun (_, _, msg) ->
        match Problem.message_latency tracker ~msg with
        | Some l -> Some (msg, l)
        | None -> None)
      arrivals
  in
  let lat_values = List.map snd latencies in
  let mean_latency =
    if lat_values = [] then 0.
    else List.fold_left ( +. ) 0. lat_values /. float_of_int (List.length lat_values)
  in
  let max_latency = List.fold_left Float.max 0. lat_values in
  {
    complete' = Problem.complete tracker;
    makespan =
      (match Problem.completion_time tracker with
      | Some t -> t
      | None -> Float.infinity);
    latencies;
    mean_latency;
    max_latency;
    bcasts' = Amac.Standard_mac.bcast_count mac;
    forced' = Amac.Standard_mac.forced_count mac;
    compliance_violations' =
      (match retained with
      | None -> []
      | Some tr -> Amac.Compliance.audit ~dual ~fack ~fprog tr);
  }

type fmmb_result = {
  fmmb : Fmmb.result;
  shape_bound : float;
  duplicate_deliveries' : int;
}

let run_fmmb ~dual ~fprog ~c ~policy ~assignment ~seed ?backend ?params
    ?max_spread_phases ?(instrument = Instrument.none) () =
  let rng = Dsim.Rng.create ~seed in
  let n = Graphs.Dual.n dual in
  let k = List.length assignment in
  let params =
    match params with Some p -> p | None -> Fmmb.default_params ~n ~k ~c
  in
  let tracker = Problem.tracker ~dual assignment in
  let fmmb =
    Fmmb.run ~dual ~fprog ~rng ~policy ~params ~assignment ~tracker ?backend
      ?max_spread_phases ?on_event:instrument.Instrument.on_event
      ~note_sim:instrument.Instrument.note_sim ()
  in
  instrument.Instrument.finish ~allow_open:true;
  let d = Graphs.Bfs.diameter (Graphs.Dual.reliable dual) in
  {
    fmmb;
    shape_bound = Bounds.fmmb_shape ~n ~d ~k;
    duplicate_deliveries' = Problem.duplicate_deliveries tracker;
  }
