(* Per-delivery relay logic: every MAC acknowledgement and delivery runs
   through here, so the module opts into the hot-path discipline checks
   (mmb_hot H1/H2/H4) alongside the path-scoped hot set. *)
[@@@mmb.hot]

type discipline = [ `Fifo | `Lifo ]

type node_state = {
  rcvd : (int, unit) Hashtbl.t;
  (* [bcastq] as a double-ended structure: [front] holds messages to send
     next (in order), [back] holds newly enqueued ones in reverse. *)
  mutable front : int list;
  mutable back : int list;
  mutable queued : int;
  mutable in_flight : int option;
}

type t = {
  mac : int Amac.Mac_handle.t;
  on_deliver : node:int -> msg:int -> time:float -> unit;
  discipline : discipline;
  relay : int -> bool;
  states : node_state array;
}

let now t = t.mac.Amac.Mac_handle.h_now ()
let record_trace t event = Amac.Mac_handle.record t.mac event

let push t st msg =
  (match t.discipline with
  | `Fifo -> st.back <- msg :: st.back
  | `Lifo -> st.front <- msg :: st.front);
  st.queued <- st.queued + 1

let pop st =
  let refill () =
    match List.rev st.back with
    | [] -> None
    | m :: rest ->
        st.front <- m :: rest;
        st.back <- [];
        Some m
  in
  let head = match st.front with m :: _ -> Some m | [] -> refill () in
  match head with
  | None -> None
  | Some m ->
      (match st.front with
      | _ :: rest -> st.front <- rest
      | [] -> assert false);
      st.queued <- st.queued - 1;
      Some m

(* Hand the queue head to the MAC if idle ("immediately, without any
   time-passage").  The in-flight message is logically still the queue
   head until its ack; we remove it eagerly and remember it, which is
   behaviorally identical. *)
let maybe_send t node =
  let st = t.states.(node) in
  match st.in_flight with
  | Some _ -> ()
  | None -> (
      match pop st with
      | None -> ()
      | Some m ->
          st.in_flight <- Some m;
          t.mac.Amac.Mac_handle.h_bcast ~node m)

let get t node msg ~from_env =
  let st = t.states.(node) in
  if not (Hashtbl.mem st.rcvd msg) then begin
    Hashtbl.replace st.rcvd msg ();
    record_trace t (Dsim.Trace.Deliver { node; msg });
    t.on_deliver ~node ~msg ~time:(now t);
    (* Own arrivals are always broadcast; received messages only by relay
       nodes (backbone flooding). *)
    if from_env || t.relay node then begin
      push t st msg;
      maybe_send t node
    end
  end
  else if from_env then
    invalid_arg "Bmmb.arrive: message already known (non-unique arrival?)"

let install ?(discipline = `Fifo) ?(relay = fun _ -> true) ~mac ~on_deliver
    () =
  let n = mac.Amac.Mac_handle.h_n in
  let t =
    {
      mac;
      on_deliver;
      discipline;
      relay;
      states =
        Array.init n (fun _ ->
            {
              rcvd = Hashtbl.create 16;
              front = [];
              back = [];
              queued = 0;
              in_flight = None;
            });
    }
  in
  for node = 0 to n - 1 do
    mac.Amac.Mac_handle.h_attach ~node
      {
        Amac.Mac_intf.on_rcv =
          (fun ~src:_ msg -> get t node msg ~from_env:false);
        on_ack =
          (fun msg ->
            let st = t.states.(node) in
            (match st.in_flight with
            | Some m when m = msg -> st.in_flight <- None
            | _ -> invalid_arg "Bmmb: ack for a message not in flight");
            maybe_send t node);
      }
  done;
  t

let arrive t ~node ~msg =
  record_trace t (Dsim.Trace.Arrive { node; msg });
  get t node msg ~from_env:true

let queue_length t ~node =
  let st = t.states.(node) in
  st.queued + match st.in_flight with Some _ -> 1 | None -> 0

let received t ~node ~msg = Hashtbl.mem t.states.(node).rcvd msg
