type params = {
  phases : int;
  election_rounds : int;
  announce_rounds : int;
  p_announce : float;
}

let ceil_log2 n =
  let rec go acc pow = if pow >= n then acc else go (acc + 1) (2 * pow) in
  go 0 1

let default_params ~n ~c =
  let c2 = c *. c in
  let logn = float_of_int (max 1 (ceil_log2 (max 2 n))) in
  {
    phases = max 4 (int_of_float (ceil (4. *. c2 *. logn *. logn)));
    election_rounds = max 4 (4 * ceil_log2 (max 2 n));
    announce_rounds =
      max 8 (int_of_float (ceil (12. *. c2 *. log (float_of_int (max 2 n)))));
    p_announce = Float.min 0.5 (1. /. (2. *. c2));
  }

type status = Active | Temp | Joined | Mis | Covered

type result = {
  mis : bool array;
  rounds_run : int;
  budget_rounds : int;
  undecided : int;
}

let run ~dual ~rng ~policy ~params ?engine ?trace ?(fprog = 1.) () =
  let n = Graphs.Dual.n dual in
  let { phases; election_rounds; announce_rounds; p_announce } = params in
  let phase_len = election_rounds + announce_rounds in
  let budget_rounds = phases * phase_len in
  let status = Array.make n Active in
  let word = Array.make n 0 in
  let bcast_last = Array.make n false in
  let engine =
    match engine with
    | Some e -> e
    | None ->
        Amac.Round_engine.of_enhanced
          (Amac.Enhanced_mac.create ~dual ~fprog ~policy ~rng ?trace ())
  in
  let fresh_word () =
    (* election_rounds independent bits, packed little-endian *)
    let w = ref 0 in
    for bit = 0 to election_rounds - 1 do
      if Dsim.Rng.bool rng then w := !w lor (1 lsl bit)
    done;
    !w
  in
  let process_inbox v ~prev_round inbox =
    let prev_sub = prev_round mod phase_len in
    if prev_sub < election_rounds then begin
      (* Election: a silent active node hearing anything (G or G') steps
         aside for the rest of the phase. *)
      if status.(v) = Active && (not bcast_last.(v)) && inbox <> [] then
        status.(v) <- Temp
    end
    else begin
      (* Announcement: hearing a G-neighbor's announcement covers v. *)
      let covered_by env =
        match env.Amac.Message.body with
        | Fmmb_msg.Announce { origin = _ } -> env.Amac.Message.reliable
        | _ -> false
      in
      match status.(v) with
      | Active | Temp | Covered ->
          if List.exists covered_by inbox then status.(v) <- Covered
      | Joined | Mis -> ()
    end
  in
  for v = 0 to n - 1 do
    engine.Amac.Round_engine.set_node ~node:v (fun ~round ~inbox ->
        if round > 0 then process_inbox v ~prev_round:(round - 1) inbox;
        let sub = round mod phase_len in
        if sub = 0 then begin
          (* Phase boundary: new members retire into the MIS, temporarily
             inactive nodes wake up, survivors draw a fresh word. *)
          (match status.(v) with
          | Joined -> status.(v) <- Mis
          | Temp -> status.(v) <- Active
          | Active | Mis | Covered -> ());
          if status.(v) = Active then word.(v) <- fresh_word ()
        end;
        if sub = election_rounds && status.(v) = Active then
          status.(v) <- Joined;
        bcast_last.(v) <- false;
        if sub < election_rounds then begin
          if status.(v) = Active && word.(v) land (1 lsl sub) <> 0 then begin
            bcast_last.(v) <- true;
            Amac.Enhanced_mac.Broadcast
              (Fmmb_msg.Election { origin = v; word = word.(v) })
          end
          else Amac.Enhanced_mac.Listen
        end
        else if status.(v) = Joined && Dsim.Rng.bernoulli rng ~p:p_announce
        then begin
          bcast_last.(v) <- true;
          Amac.Enhanced_mac.Broadcast (Fmmb_msg.Announce { origin = v })
        end
        else Amac.Enhanced_mac.Listen)
  done;
  let quiescent () =
    Array.for_all (fun s -> s = Mis || s = Covered) status
  in
  let rounds_run =
    engine.Amac.Round_engine.run_until ~max_rounds:budget_rounds
      ~stop:quiescent
  in
  (* A Joined node at the horizon has survived its election; it is in the
     set even though its announcement part was cut short. *)
  let mis = Array.map (fun s -> s = Mis || s = Joined) status in
  let undecided =
    Array.fold_left
      (fun acc s -> match s with Active | Temp -> acc + 1 | _ -> acc)
      0 status
  in
  { mis; rounds_run; budget_rounds; undecided }
