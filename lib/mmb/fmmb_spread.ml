type params = { periods_per_phase : int; p_active : float; relays : bool }

let default_params ~n ~c =
  let c2 = c *. c in
  {
    periods_per_phase =
      4 + int_of_float (ceil (6. *. c2 *. log (float_of_int (max 2 n))));
    p_active = Float.min 0.5 (1. /. (2. *. c2));
    relays = true;
  }

type result = { rounds_run : int; phases_run : int }

let run ~dual ~rng ~policy ~params ~mis ~sets ~on_payload ~stop ~max_phases
    ?engine ?trace ?(fprog = 1.) () =
  let n = Graphs.Dual.n dual in
  let { periods_per_phase; p_active; relays } = params in
  let phase_len = 3 * periods_per_phase in
  let budget_rounds = max_phases * phase_len in
  let sent = Array.init n (fun _ -> Hashtbl.create 8) in
  let current = Array.make n None in
  let relay_buf = Array.make n None in
  let engine =
    match engine with
    | Some e -> e
    | None ->
        Amac.Round_engine.of_enhanced
          (Amac.Enhanced_mac.create ~dual ~fprog ~policy ~rng ?trace ())
  in
  let next_unsent v =
    Dsim.Tbl.min_key ~skip:(Hashtbl.mem sent.(v)) ~cmp:Int.compare sets.(v)
  in
  let process_inbox v ~prev_round inbox =
    let prev_sub = prev_round mod 3 in
    List.iter
      (fun env ->
        match env.Amac.Message.body with
        | Fmmb_msg.Spread { payload } ->
            on_payload ~node:v ~payload;
            if mis.(v) then Hashtbl.replace sets.(v) payload ();
            if
              relays && prev_sub < 2
              && relay_buf.(v) = None
              && env.Amac.Message.reliable
            then relay_buf.(v) <- Some payload
        | _ -> ())
      inbox
  in
  for v = 0 to n - 1 do
    engine.Amac.Round_engine.set_node ~node:v (fun ~round ~inbox ->
        if round mod 3 = 0 then relay_buf.(v) <- None;
        if round > 0 then process_inbox v ~prev_round:(round - 1) inbox;
        if round mod phase_len = 0 && mis.(v) then begin
          (* Phase boundary: retire the previous phase's message, pick the
             next unsent one. *)
          (match current.(v) with
          | Some m -> Hashtbl.replace sent.(v) m ()
          | None -> ());
          current.(v) <- next_unsent v
        end;
        match round mod 3 with
        | 0 -> (
            if mis.(v) && Dsim.Rng.bernoulli rng ~p:p_active then
              match current.(v) with
              | Some payload ->
                  Amac.Enhanced_mac.Broadcast (Fmmb_msg.Spread { payload })
              | None -> Amac.Enhanced_mac.Listen
            else Amac.Enhanced_mac.Listen)
        | _ -> (
            match relay_buf.(v) with
            | Some payload ->
                relay_buf.(v) <- None;
                Amac.Enhanced_mac.Broadcast (Fmmb_msg.Spread { payload })
            | None -> Amac.Enhanced_mac.Listen))
  done;
  let rounds_run =
    engine.Amac.Round_engine.run_until ~max_rounds:budget_rounds ~stop
  in
  { rounds_run; phases_run = (rounds_run + phase_len - 1) / phase_len }
