type params = { p_active : float; spread_periods_per_phase : int }

let default_params ~n ~c =
  let c2 = c *. c in
  {
    p_active = Float.min 0.5 (1. /. (2. *. c2));
    spread_periods_per_phase =
      4 + int_of_float (ceil (6. *. c2 *. log (float_of_int (max 2 n))));
  }

type t = {
  dual : Graphs.Dual.t;
  params : params;
  rng : Dsim.Rng.t;
  mis : bool array;
  on_payload : node:int -> payload:int -> unit;
  engine : Fmmb_msg.t Amac.Round_engine.t;
  (* Per-node state.  [pending] is a non-MIS node's not-yet-acknowledged
     payloads; [custody] is an MIS node's message set Mv. *)
  pending : (int, unit) Hashtbl.t array;
  custody : (int, unit) Hashtbl.t array;
  sent : (int, unit) Hashtbl.t array;
  current : int option array;
  heard_probe : bool array;
  absorbed : int option array;
  relay_buf : int option array;
  mutable spread_periods_done : int;
}

(* Round [r] belongs to period [r/3] (sub-round [r mod 3]); even periods
   gather, odd periods spread. *)
let is_gather_period period = period mod 2 = 0

let smallest ?except set =
  let skip =
    match except with None -> fun _ -> false | Some e -> Hashtbl.mem e
  in
  Dsim.Tbl.min_key ~skip ~cmp:Int.compare set

let process_inbox t v ~prev_round inbox =
  let prev_period = prev_round / 3 and prev_sub = prev_round mod 3 in
  (* Payload-bearing receptions are knowledge regardless of sub-round. *)
  List.iter
    (fun env ->
      match Fmmb_msg.payload env.Amac.Message.body with
      | Some payload -> t.on_payload ~node:v ~payload
      | None -> ())
    inbox;
  if is_gather_period prev_period then begin
    match prev_sub with
    | 0 ->
        if not t.mis.(v) then
          t.heard_probe.(v) <-
            List.exists
              (fun env ->
                match env.Amac.Message.body with
                | Fmmb_msg.Probe { origin = _ } -> env.Amac.Message.reliable
                | _ -> false)
              inbox
    | 1 ->
        if t.mis.(v) then
          List.iter
            (fun env ->
              match env.Amac.Message.body with
              | Fmmb_msg.Data { origin = _; payload }
                when env.Amac.Message.reliable ->
                  Hashtbl.replace t.custody.(v) payload ();
                  if t.absorbed.(v) = None then t.absorbed.(v) <- Some payload
              | _ -> ())
            inbox
    | _ ->
        if not t.mis.(v) then
          List.iter
            (fun env ->
              match env.Amac.Message.body with
              | Fmmb_msg.Ack_data { origin = _; payload }
                when env.Amac.Message.reliable ->
                  Hashtbl.remove t.pending.(v) payload
              | _ -> ())
            inbox
  end
  else begin
    (* Spread period: absorb overlay messages and arm relays. *)
    List.iter
      (fun env ->
        match env.Amac.Message.body with
        | Fmmb_msg.Spread { payload } ->
            if t.mis.(v) then Hashtbl.replace t.custody.(v) payload ();
            if
              prev_sub < 2
              && t.relay_buf.(v) = None
              && env.Amac.Message.reliable
            then t.relay_buf.(v) <- Some payload
        | _ -> ())
      inbox
  end

let act t v ~round =
  let period = round / 3 and sub = round mod 3 in
  if is_gather_period period then begin
    match sub with
    | 0 ->
        t.absorbed.(v) <- None;
        if t.mis.(v) && Dsim.Rng.bernoulli t.rng ~p:t.params.p_active then
          Amac.Enhanced_mac.Broadcast (Fmmb_msg.Probe { origin = v })
        else Amac.Enhanced_mac.Listen
    | 1 ->
        if (not t.mis.(v)) && t.heard_probe.(v) then begin
          match smallest t.pending.(v) with
          | Some payload ->
              Amac.Enhanced_mac.Broadcast (Fmmb_msg.Data { origin = v; payload })
          | None -> Amac.Enhanced_mac.Listen
        end
        else Amac.Enhanced_mac.Listen
    | _ -> (
        match (t.mis.(v), t.absorbed.(v)) with
        | true, Some payload ->
            Amac.Enhanced_mac.Broadcast
              (Fmmb_msg.Ack_data { origin = v; payload })
        | _ -> Amac.Enhanced_mac.Listen)
  end
  else begin
    (* Spread period.  Phase boundaries are counted in spread periods. *)
    if sub = 0 then begin
      t.relay_buf.(v) <- None;
      if v = 0 then t.spread_periods_done <- t.spread_periods_done + 1;
      if
        t.mis.(v)
        && (t.spread_periods_done - 1) mod t.params.spread_periods_per_phase
           = 0
      then begin
        (* Messages are picked up only at phase boundaries so each gets a
           full phase of overlay broadcasts (Lemma 4.7's guarantee). *)
        (match t.current.(v) with
        | Some m -> Hashtbl.replace t.sent.(v) m ()
        | None -> ());
        t.current.(v) <- smallest ~except:t.sent.(v) t.custody.(v)
      end
    end;
    match sub with
    | 0 -> (
        if t.mis.(v) && Dsim.Rng.bernoulli t.rng ~p:t.params.p_active then
          match t.current.(v) with
          | Some payload ->
              Amac.Enhanced_mac.Broadcast (Fmmb_msg.Spread { payload })
          | None -> Amac.Enhanced_mac.Listen
        else Amac.Enhanced_mac.Listen)
    | _ -> (
        match t.relay_buf.(v) with
        | Some payload ->
            t.relay_buf.(v) <- None;
            Amac.Enhanced_mac.Broadcast (Fmmb_msg.Spread { payload })
        | None -> Amac.Enhanced_mac.Listen)
  end

let create ~dual ~rng ~policy ~params ~mis ~on_payload ?engine ?trace
    ?(fprog = 1.) () =
  let n = Graphs.Dual.n dual in
  let engine =
    match engine with
    | Some e -> e
    | None ->
        Amac.Round_engine.of_enhanced
          (Amac.Enhanced_mac.create ~dual ~fprog ~policy ~rng ?trace ())
  in
  let t =
    {
      dual;
      params;
      rng;
      mis;
      on_payload;
      engine;
      pending = Array.init n (fun _ -> Hashtbl.create 4);
      custody = Array.init n (fun _ -> Hashtbl.create 8);
      sent = Array.init n (fun _ -> Hashtbl.create 8);
      current = Array.make n None;
      heard_probe = Array.make n false;
      absorbed = Array.make n None;
      relay_buf = Array.make n None;
      spread_periods_done = 0;
    }
  in
  for v = 0 to n - 1 do
    engine.Amac.Round_engine.set_node ~node:v (fun ~round ~inbox ->
        if round > 0 then process_inbox t v ~prev_round:(round - 1) inbox;
        act t v ~round)
  done;
  t

let inject t ~node ~payload =
  t.on_payload ~node ~payload;
  if t.mis.(node) then Hashtbl.replace t.custody.(node) payload ()
  else Hashtbl.replace t.pending.(node) payload ()

let run_until t ~max_rounds ~stop =
  t.engine.Amac.Round_engine.run_until ~max_rounds ~stop

let rounds t = t.engine.Amac.Round_engine.rounds_done ()

type result = {
  complete : bool;
  rounds_mis : int;
  rounds_stream : int;
  total_rounds : int;
  time : float;
  mis_valid : bool;
}

let run ~dual ~fprog ~rng ~policy ~c ~arrivals ~tracker ~max_rounds
    ?mis_params ?params () =
  let n = Graphs.Dual.n dual in
  let mis_params =
    match mis_params with
    | Some p -> p
    | None -> Fmmb_mis.default_params ~n ~c
  in
  let params =
    match params with Some p -> p | None -> default_params ~n ~c
  in
  let mis_res = Fmmb_mis.run ~dual ~rng ~policy ~params:mis_params ~fprog () in
  let mis = mis_res.Fmmb_mis.mis in
  let mis_rounds = mis_res.Fmmb_mis.rounds_run in
  let known = Array.init n (fun _ -> Hashtbl.create 8) in
  let stream_ref = ref None in
  let deliver ~node ~payload =
    if not (Hashtbl.mem known.(node) payload) then begin
      Hashtbl.replace known.(node) payload ();
      let time =
        match !stream_ref with
        | Some s -> (float_of_int (mis_rounds + rounds s)) *. fprog
        | None -> float_of_int mis_rounds *. fprog
      in
      Problem.on_deliver tracker ~node ~msg:payload ~time
    end
  in
  let stream =
    create ~dual ~rng ~policy ~params ~mis ~on_payload:deliver ~fprog ()
  in
  stream_ref := Some stream;
  (* Injection schedule: arrival at time T maps to stream round
     max(0, ceil((T - mis_end) / fprog)). *)
  let mis_end = float_of_int mis_rounds *. fprog in
  let by_round =
    List.sort
      (fun (r1, n1, m1) (r2, n2, m2) ->
        let c = Int.compare r1 r2 in
        if c <> 0 then c
        else
          let c = Int.compare n1 n2 in
          if c <> 0 then c else Int.compare m1 m2)
      (List.map
         (fun (time, node, msg) ->
           let r =
             if time <= mis_end then 0
             else int_of_float (ceil ((time -. mis_end) /. fprog))
           in
           (r, node, msg))
         arrivals)
  in
  let stop () = Problem.complete tracker in
  let rec drive remaining =
    match remaining with
    | [] -> ignore (run_until stream ~max_rounds:(max_rounds - rounds stream) ~stop)
    | (r, node, msg) :: rest ->
        let gap = r - rounds stream in
        if gap > 0 then
          ignore (run_until stream ~max_rounds:gap ~stop:(fun () -> false));
        inject stream ~node ~payload:msg;
        drive rest
  in
  drive by_round;
  let stream_rounds = rounds stream in
  let mis_list = List.filter (fun v -> mis.(v)) (List.init n Fun.id) in
  {
    complete = Problem.complete tracker;
    rounds_mis = mis_rounds;
    rounds_stream = stream_rounds;
    total_rounds = mis_rounds + stream_rounds;
    time = float_of_int (mis_rounds + stream_rounds) *. fprog;
    mis_valid =
      Graphs.Mis.is_maximal_independent (Graphs.Dual.reliable dual) mis_list;
  }
