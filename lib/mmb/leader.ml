type result = {
  leaders : int array;
  elected : bool;
  time : float;
  bcasts : int;
}

type node_state = {
  mutable best : int;
  mutable in_flight : int option; (* the value currently broadcasting *)
  mutable last_sent : int option; (* highest value fully broadcast *)
}

let run ~dual ~fack ~fprog ~policy ~seed ?ids ?(check_compliance = false)
    ?(max_events = 50_000_000) () =
  let n = Graphs.Dual.n dual in
  let ids = match ids with Some a -> a | None -> Array.init n Fun.id in
  if Array.length ids <> n then invalid_arg "Leader.run: ids size mismatch";
  let sim = Dsim.Sim.create () in
  let rng = Dsim.Rng.create ~seed in
  let trace =
    if check_compliance then Some (Dsim.Trace.create ()) else None
  in
  let mac =
    Amac.Standard_mac.create ~sim ~dual ~fack ~fprog ~policy ~rng ?trace ()
  in
  let states =
    Array.map (fun id -> { best = id; in_flight = None; last_sent = None })
      ids
  in
  let last_change = ref 0. in
  let maybe_send node =
    let st = states.(node) in
    let stale = match st.last_sent with Some v -> v < st.best | None -> true in
    if st.in_flight = None && stale then begin
      st.in_flight <- Some st.best;
      Amac.Standard_mac.bcast mac ~node st.best
    end
  in
  for node = 0 to n - 1 do
    Amac.Standard_mac.attach mac ~node
      {
        Amac.Mac_intf.on_rcv =
          (fun ~src:_ v ->
            let st = states.(node) in
            if v > st.best then begin
              st.best <- v;
              last_change := Dsim.Sim.now sim;
              maybe_send node
            end);
        on_ack =
          (fun v ->
            let st = states.(node) in
            (match st.in_flight with
            | Some w when w = v -> st.in_flight <- None
            | _ -> invalid_arg "Leader: ack for unexpected value");
            st.last_sent <-
              Some (match st.last_sent with Some p -> max p v | None -> v);
            maybe_send node);
      }
  done;
  for node = 0 to n - 1 do
    Amac.Standard_mac.env_at mac ~time:0. (fun () -> maybe_send node)
  done;
  ignore (Dsim.Sim.run ~max_events sim);
  (* Verify agreement component by component. *)
  let comp = Graphs.Bfs.components (Graphs.Dual.reliable dual) in
  let comp_max = Hashtbl.create 8 in
  Array.iteri
    (fun v id ->
      let c = comp.(v) in
      let cur = try Hashtbl.find comp_max c with Not_found -> min_int in
      Hashtbl.replace comp_max c (max cur id))
    ids;
  let elected = ref true in
  Array.iteri
    (fun v st ->
      if st.best <> Hashtbl.find comp_max comp.(v) then elected := false)
    states;
  let violations =
    match trace with
    | None -> []
    | Some tr -> Amac.Compliance.audit ~dual ~fack ~fprog tr
  in
  ( {
      leaders = Array.map (fun st -> st.best) states;
      elected = !elected;
      time = !last_change;
      bcasts = Amac.Standard_mac.bcast_count mac;
    },
    violations )
