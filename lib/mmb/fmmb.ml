type params = {
  c : float;
  mis : Fmmb_mis.params;
  gather : Fmmb_gather.params;
  spread : Fmmb_spread.params;
}

let default_params ~n ~k ~c =
  {
    c;
    mis = Fmmb_mis.default_params ~n ~c;
    gather = Fmmb_gather.default_params ~n ~k ~c;
    spread = Fmmb_spread.default_params ~n ~c;
  }

type backend = Rounds | Continuous of Amac.Round_sync.mode

(* Returns the engine plus the underlying [Dsim.Sim.t] when the backend
   has one (Continuous), so the caller can hand it to instrumentation. *)
let make_engine ~backend ~dual ~fprog ~rng ~policy ?trace () =
  match backend with
  | Rounds ->
      ( Amac.Round_engine.of_enhanced
          (Amac.Enhanced_mac.create ~dual ~fprog ~policy ~rng ?trace ()),
        None )
  | Continuous mode ->
      let sim = Dsim.Sim.create () in
      let mac =
        Amac.Standard_mac.create ~sim ~dual ~fack:(100. *. fprog) ~fprog
          ~policy:(Amac.Round_sync.policy ~mode)
          ~rng ?trace ()
      in
      (Amac.Round_engine.of_round_sync (Amac.Round_sync.create ~mac ()), Some sim)

type result = {
  complete : bool;
  rounds_mis : int;
  rounds_gather : int;
  rounds_spread : int;
  total_rounds : int;
  time : float;
  mis_valid : bool;
  mis_size : int;
  gather_leftover : int;
}

let run ~dual ~fprog ~rng ~policy ~params ~assignment ~tracker
    ?(backend = Rounds) ?max_spread_phases ?trace ?on_event
    ?(note_sim = fun (_ : Dsim.Sim.t) -> ()) () =
  (* Continuous-backend stage engines are collected so their cumulative
     engine counters can be noted once the stages have all run. *)
  let sims = ref [] in
  let fresh_engine () =
    let engine, sim = make_engine ~backend ~dual ~fprog ~rng ~policy ?trace () in
    (match sim with Some s -> sims := s :: !sims | None -> ());
    engine
  in
  let n = Graphs.Dual.n dual in
  let g = Graphs.Dual.reliable dual in
  let k = List.length assignment in
  (* Per-node delivery dedup: the tracker must see at most one deliver per
     (node, message).  Delivery timestamps are stage-granular (the overall
     completion time is measured in rounds, below). *)
  let known = Array.init n (fun _ -> Hashtbl.create 8) in
  let stage_base = ref 0. in
  (* Problem-level events go to [on_event], at stage-granular times
     (matching the tracker's clock).  Kept separate from [trace]: the
     per-stage engines restart uids and times, so their MAC events must
     not share a stream with the monotone MMB lifecycle. *)
  let record_mmb ~time event =
    match on_event with None -> () | Some f -> f ~time event
  in
  let deliver ~node ~payload =
    if not (Hashtbl.mem known.(node) payload) then begin
      Hashtbl.replace known.(node) payload ();
      record_mmb ~time:!stage_base
        (Dsim.Trace.Deliver { node; msg = payload });
      Problem.on_deliver tracker ~node ~msg:payload ~time:!stage_base
    end
  in
  (* Arrivals: payloads are delivered at their origins at time 0. *)
  let initial = Array.make n [] in
  List.iter
    (fun (node, msg) ->
      initial.(node) <- msg :: initial.(node);
      record_mmb ~time:0. (Dsim.Trace.Arrive { node; msg });
      deliver ~node ~payload:msg)
    assignment;
  (* Stage 1: MIS. *)
  let mis_res =
    Fmmb_mis.run ~dual ~rng ~policy ~params:params.mis
      ~engine:(fresh_engine ()) ()
  in
  let mis = mis_res.Fmmb_mis.mis in
  stage_base := float_of_int mis_res.Fmmb_mis.rounds_run *. fprog;
  (* Stage 2: gather. *)
  let gather_res =
    Fmmb_gather.run ~dual ~rng ~policy ~params:params.gather ~mis ~initial
      ~on_payload:deliver ~engine:(fresh_engine ()) ~fprog ()
  in
  stage_base :=
    !stage_base +. (float_of_int gather_res.Fmmb_gather.rounds_run *. fprog);
  (* Stage 3: spread, until the tracker observes completion. *)
  let d = Graphs.Bfs.diameter g in
  let max_phases =
    match max_spread_phases with Some p -> p | None -> (4 * (d + k)) + 8
  in
  let stop () = Problem.complete tracker in
  let spread_res =
    Fmmb_spread.run ~dual ~rng ~policy ~params:params.spread ~mis
      ~sets:gather_res.Fmmb_gather.mis_sets ~on_payload:deliver ~stop
      ~max_phases ~engine:(fresh_engine ()) ~fprog ()
  in
  let total_rounds =
    mis_res.Fmmb_mis.rounds_run + gather_res.Fmmb_gather.rounds_run
    + spread_res.Fmmb_spread.rounds_run
  in
  List.iter note_sim (List.rev !sims);
  let mis_list = List.filter (fun v -> mis.(v)) (List.init n Fun.id) in
  {
    complete = Problem.complete tracker;
    rounds_mis = mis_res.Fmmb_mis.rounds_run;
    rounds_gather = gather_res.Fmmb_gather.rounds_run;
    rounds_spread = spread_res.Fmmb_spread.rounds_run;
    total_rounds;
    time = float_of_int total_rounds *. fprog;
    mis_valid = Graphs.Mis.is_maximal_independent g mis_list;
    mis_size = List.length mis_list;
    gather_leftover = gather_res.Fmmb_gather.leftover;
  }
