(** The Fast Multi-Message Broadcast algorithm (Section 4, Theorem 4.1).

    Composes the three subroutines — MIS construction, gathering, spreading
    — on the enhanced abstract MAC layer, in lock-step rounds of length
    [fprog].  Under a grey-zone restricted G' it solves MMB w.h.p. in
    [O((D log n + k log n + log³ n) · Fprog)] time, with no [Fack] term.

    Faithfulness notes (also in DESIGN.md): nodes know [n] and the
    grey-zone constant [c] (as the paper's round budgets assume), and the
    gather budget is computed from [k]; the paper leaves the k-unknown
    phase-transition mechanism unspecified, and a standard guess-and-double
    wrapper would add only a constant factor.  Spreading runs until the
    external tracker observes completion (nodes themselves never detect
    it), bounded by a [D+k]-proportional phase budget. *)

type params = {
  c : float;  (** grey-zone constant used to size budgets *)
  mis : Fmmb_mis.params;
  gather : Fmmb_gather.params;
  spread : Fmmb_spread.params;
}

(** How the lock-step rounds are executed. *)
type backend =
  | Rounds
      (** {!Amac.Enhanced_mac}: direct round semantics (default) *)
  | Continuous of Amac.Round_sync.mode
      (** {!Amac.Round_sync}: rounds constructed from the continuous
          engine's abort + timer primitives, as Section 4.1 prescribes;
          the [policy] argument is superseded by the mode's scheduler *)

val default_params : n:int -> k:int -> c:float -> params

type result = {
  complete : bool;
  rounds_mis : int;
  rounds_gather : int;
  rounds_spread : int;
  total_rounds : int;
  time : float;  (** [total_rounds * fprog] *)
  mis_valid : bool;  (** was the constructed set a valid MIS of G? *)
  mis_size : int;
  gather_leftover : int;
}

val run :
  dual:Graphs.Dual.t ->
  fprog:float ->
  rng:Dsim.Rng.t ->
  policy:Fmmb_msg.t Amac.Enhanced_mac.round_policy ->
  params:params ->
  assignment:Problem.assignment ->
  tracker:Problem.tracker ->
  ?backend:backend ->
  ?max_spread_phases:int ->
  ?trace:Dsim.Trace.t ->
  ?on_event:(time:float -> Dsim.Trace.event -> unit) ->
  ?note_sim:(Dsim.Sim.t -> unit) ->
  unit ->
  result
(** [max_spread_phases] defaults to [4 * (D + k) + 8].  [note_sim] is
    called once per stage engine after all stages have run, with each
    [Continuous]-backend engine's simulator, so engine-cost accounting
    ({!Mmb.Instrument.note_sim} → [Obs.Global]) covers FMMB runs; the
    [Rounds] backend has no engine and notes nothing.  [trace] is handed
    to each per-stage MAC engine (stage-local uids and times — suitable
    for inspection, not for a single-stream audit); [on_event] receives
    only the problem-level [Arrive]/[Deliver] lifecycle at stage-granular
    monotone times, which is what span derivation ({!Obs.Spans}) wants —
    {!Obs.Run} points it at an observer-attached trace.  Handing out a
    callback instead of recording into a trace here keeps trace emission
    out of the protocol layer (check A4). *)
