let check ~dual trace =
  let findings = ref [] in
  let add fmt = Printf.ksprintf (fun s -> findings := s :: !findings) fmt in
  let g = Graphs.Dual.reliable dual in
  let n = Graphs.Graph.n g in
  let comp = Graphs.Bfs.components g in
  let arrive_index : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  (* msg -> (trace index, origin) *)
  let delivered : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  (* (node, msg) -> first delivery index *)
  let rcv_seen = Array.make n (-1) in
  (* node -> index of first MAC reception *)
  let entries = Array.of_list (Dsim.Trace.entries trace) in
  Array.iteri
    (fun idx { Dsim.Trace.event; _ } ->
      match event with
      | Dsim.Trace.Arrive { node; msg } ->
          if Hashtbl.mem arrive_index msg then
            add "message m%d arrived twice (MMB-well-formedness)" msg
          else Hashtbl.replace arrive_index msg (idx, node)
      | Dsim.Trace.Rcv { node; _ } ->
          if rcv_seen.(node) = -1 then rcv_seen.(node) <- idx
      | Dsim.Trace.Deliver { node; msg } -> (
          (match Hashtbl.find_opt delivered (node, msg) with
          | Some _ ->
              add "node %d delivered m%d twice (condition (b))" node msg
          | None -> Hashtbl.replace delivered (node, msg) idx);
          match Hashtbl.find_opt arrive_index msg with
          | None ->
              add
                "node %d delivered m%d before (or without) its arrival \
                 (condition (b))"
                node msg
          | Some (a_idx, origin) ->
              if idx < a_idx then
                add "node %d delivered m%d before its arrival" node msg;
              if
                node <> origin
                && (rcv_seen.(node) = -1 || rcv_seen.(node) > idx)
              then
                add
                  "node %d delivered m%d without any prior MAC reception"
                  node msg)
      | Dsim.Trace.Bcast _ | Dsim.Trace.Ack _ | Dsim.Trace.Abort _ -> ())
    entries;
  (* Completeness: every message must reach its origin's whole component. *)
  Dsim.Tbl.sorted_iter ~cmp:Int.compare
    (fun msg (_, origin) ->
      for v = 0 to n - 1 do
        if comp.(v) = comp.(origin) && not (Hashtbl.mem delivered (v, msg))
        then add "node %d never delivered m%d (condition (a))" v msg
      done)
    arrive_index;
  List.rev !findings
