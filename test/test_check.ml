(* The architecture checker: fixture files under lint_fixtures/ exercise
   every A-rule's positive hit and the per-tool escape hatches; inline
   sources pin the scope boundaries (which layer poses fire, which are
   exempt); and a real-tree scan asserts the shipped sources stay clean
   under the shipped allowlist, exactly as `dune build @check` runs it. *)

let rules_of findings = List.map (fun f -> f.Analysis.Finding.rule) findings
let lines_of findings = List.map (fun f -> f.Analysis.Finding.line) findings

let check_rules name expected findings =
  Alcotest.(check (list string)) name expected (rules_of findings)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Pose a fixture file at a path, so rule scopes see it "living" there. *)
let posed fixture file = Check.check_source ~file (read_file fixture)

(* --- A1: layer DAG ------------------------------------------------------- *)

let test_a1_backedge () =
  let fs = posed "lint_fixtures/a1_backedge.ml" "lib/mmb/fixture.ml" in
  check_rules "protocol layer referencing obs is a back-edge" [ "A1"; "A1" ]
    fs;
  Alcotest.(check (list int)) "on the two reference lines" [ 3; 5 ]
    (lines_of fs);
  check_rules "the same references are legal from bench" []
    (posed "lint_fixtures/a1_backedge.ml" "bench/fixture.ml");
  check_rules "and from the obs layer itself" []
    (posed "lint_fixtures/a1_backedge.ml" "lib/obs/fixture.ml")

let test_a1_seeded_dsim_backedge () =
  (* The acceptance seed: an Amac reference from lib/dsim must trip A1. *)
  let src = "let f ~uid ~src body = Amac.Message.make ~uid ~src body" in
  check_rules "dsim referencing amac is a back-edge" [ "A1" ]
    (Check.check_source ~file:"lib/dsim/fixture.ml" src);
  check_rules "amac referencing amac-from-above is fine" []
    (Check.check_source ~file:"lib/mmb/fixture.ml" src)

let test_a1_siblings () =
  let src = "let f () = Radio.Decay.default" in
  check_rules "mmb referencing radio is a sibling edge" [ "A1" ]
    (Check.check_source ~file:"lib/mmb/fixture.ml" src);
  let src' = "let f () = Mmb.Problem.uniform" in
  check_rules "radio referencing mmb is a sibling edge" [ "A1" ]
    (Check.check_source ~file:"lib/radio/fixture.ml" src');
  check_rules "obs may reference mmb (it sits above)" []
    (Check.check_source ~file:"lib/obs/fixture.ml" src')

let test_a1_interfaces () =
  check_rules "type references in .mli files count" [ "A1" ]
    (Check.check_source ~file:"lib/mmb/fixture.mli"
       "val finish : Obs.Observer.t -> unit");
  check_rules "downward type references are fine" []
    (Check.check_source ~file:"lib/obs/fixture.mli"
       "val wrap : Mmb.Problem.assignment -> unit")

(* --- A2: the MAC abstraction boundary ------------------------------------ *)

let test_a2_boundary () =
  let fs = posed "lint_fixtures/a2_memedge.ml" "lib/mmb/fixture.ml" in
  check_rules "adjacency query flagged, Dual surface not" [ "A2" ] fs;
  Alcotest.(check (list int)) "on the mem_edge line" [ 3 ] (lines_of fs);
  check_rules "the same query is legal in obs" []
    (posed "lint_fixtures/a2_memedge.ml" "lib/obs/fixture.ml");
  check_rules "and in graphs itself" []
    (posed "lint_fixtures/a2_memedge.ml" "lib/graphs/fixture.ml")

let test_a2_open_denied () =
  check_rules "open Graphs makes the surface ambient: denied" [ "A2" ]
    (Check.check_source ~file:"lib/mmb/fixture.ml"
       "open Graphs\n\nlet f d = Dual.n d");
  check_rules "unknown submodules are denied by default" [ "A2" ]
    (Check.check_source ~file:"lib/mmb/fixture.mli"
       "val m : Graphs.Matrix.t -> int")

(* --- A3: top-level mutable state ----------------------------------------- *)

let test_a3_top_state () =
  let fs = posed "lint_fixtures/a3_topstate.ml" "lib/mmb/fixture.ml" in
  check_rules "ref, Hashtbl.create, nested Buffer.create flagged"
    [ "A3"; "A3"; "A3" ] fs;
  Alcotest.(check (list int)) "function-local and lazy state exempt"
    [ 3; 5; 7 ] (lines_of fs);
  check_rules "registries are declared capability exceptions" []
    (posed "lint_fixtures/a3_topstate.ml" "lib/obs/global.ml");
  check_rules "outside lib/ the rule does not apply" []
    (posed "lint_fixtures/a3_topstate.ml" "bin/fixture.ml")

(* --- A4: engine access discipline ---------------------------------------- *)

let test_a4_engine () =
  let fs = posed "lint_fixtures/a4_engine.ml" "lib/mmb/fixture.ml" in
  check_rules "schedule_at and Trace.record flagged above the MAC"
    [ "A4"; "A4" ] fs;
  check_rules "the MAC layer owns the engine" []
    (posed "lint_fixtures/a4_engine.ml" "lib/amac/fixture.ml");
  check_rules "so does the observability layer" []
    (posed "lint_fixtures/a4_engine.ml" "lib/obs/fixture.ml");
  check_rules "and the engine itself" []
    (posed "lint_fixtures/a4_engine.ml" "lib/dsim/fixture.ml")

(* --- A5: float equality -------------------------------------------------- *)

let test_a5_float_eq () =
  let fs = posed "lint_fixtures/a5_floateq.ml" "lib/mmb/fixture.ml" in
  check_rules "= and <> against float literals flagged" [ "A5"; "A5" ] fs;
  Alcotest.(check (list int)) "Float.equal and int = exempt" [ 3; 5 ]
    (lines_of fs);
  check_rules "out of scope outside lib/" []
    (posed "lint_fixtures/a5_floateq.ml" "bench/fixture.ml")

(* --- A6: epoch mutation discipline ---------------------------------------- *)

let test_a6_epoch () =
  let fs = posed "lint_fixtures/a6_epoch.ml" "lib/mmb/fixture.ml" in
  check_rules "view consult and oracle probe flagged, constructor not"
    [ "A6"; "A6" ] fs;
  Alcotest.(check (list int)) "on the view and note_delivery lines" [ 6; 7 ]
    (lines_of fs);
  check_rules "the MAC's consult seam is sanctioned" []
    (posed "lint_fixtures/a6_epoch.ml" "lib/amac/fixture.ml");
  check_rules "lib/dyn owns its own epochs" []
    (posed "lint_fixtures/a6_epoch.ml" "lib/dyn/fixture.ml");
  check_rules "executables may not step epochs either" [ "A6"; "A6" ]
    (posed "lint_fixtures/a6_epoch.ml" "bin/fixture.ml")

let test_a6_open_denied () =
  check_rules "open Dyn makes the mutator surface ambient: denied" [ "A6" ]
    (Check.check_source ~file:"lib/mmb/fixture.ml"
       "open Dyn\n\nlet f s = Dual.of_static s")

(* --- Escape hatches ------------------------------------------------------ *)

let test_suppression_marker () =
  check_rules "previous-line and same-line check suppressions hold" []
    (posed "lint_fixtures/a3_suppressed.ml" "lib/mmb/fixture.ml");
  (* The other analyzer's marker must NOT silence this tool. *)
  let src = "(* lint: allow A3 *)\nlet counter = ref 0" in
  check_rules "the lint's marker does not silence the checker" [ "A3" ]
    (Check.check_source ~file:"lib/mmb/fixture.ml" src)

let test_allowlist () =
  let source = read_file "lint_fixtures/a3_topstate.ml" in
  let file = "lib/mmb/fixture.ml" in
  check_rules "allowlist entry silences the file" []
    (Check.check_source ~file ~allow:[ ("A3", file) ] source);
  check_rules "another rule's entry does not"
    [ "A3"; "A3"; "A3" ]
    (Check.check_source ~file ~allow:[ ("A4", file) ] source)

let test_clean_fixture () =
  check_rules "clean fixture has zero findings" []
    (posed "lint_fixtures/check_clean.ml" "lib/mmb/fixture.ml")

let test_parse_error_is_a_finding () =
  check_rules "unparseable source yields E0" [ "E0" ]
    (Check.check_source ~file:"lib/mmb/fixture.ml" "let = =")

(* --- Stale escape hatches ------------------------------------------------ *)

let test_stale_suppression () =
  (* Under its real lint_fixtures/ path the fixture is outside A3's
     lib/ scope, so neither comment suppresses anything — both stale. *)
  let fs = Check.run_files ~stale:true [ "lint_fixtures/a3_suppressed.ml" ] in
  check_rules "comments that suppress nothing are reported" [ "S1"; "S1" ] fs

let test_stale_allow_entry () =
  let fs =
    Check.run_files ~stale:true
      ~allow:(Analysis.Allow.of_pairs [ ("A4", "nowhere/such_file.ml") ])
      [ "lint_fixtures/check_clean.ml" ]
  in
  check_rules "an entry suppressing nothing is reported" [ "S2" ] fs

(* --- The real tree ------------------------------------------------------- *)

(* The same scan `dune build @check` performs, minus bin/bench (the test
   binary sees only lib/ staged next to it): the shipped sources must be
   clean under the shipped allowlist.  This is the end-to-end guarantee
   the fixtures above only approximate. *)
let test_real_tree () =
  let files = Analysis.Cli.collect_files ~exts:[ ".ml"; ".mli" ] [ "../lib" ] in
  Alcotest.(check bool)
    (Printf.sprintf "scanned a substantial tree (%d files)" (List.length files))
    true
    (List.length files > 60);
  let allow = Analysis.Allow.load "../check.allow" in
  let fs = Check.run_files ~allow ~stale:true files in
  Alcotest.(check (list string)) "lib/ is architecture-clean" []
    (List.map Analysis.Finding.to_string fs)

let suite =
  [
    ( "check",
      [
        Alcotest.test_case "A1 layer back-edges" `Quick test_a1_backedge;
        Alcotest.test_case "A1 seeded dsim->amac back-edge" `Quick
          test_a1_seeded_dsim_backedge;
        Alcotest.test_case "A1 sibling layers" `Quick test_a1_siblings;
        Alcotest.test_case "A1 interface references" `Quick test_a1_interfaces;
        Alcotest.test_case "A2 MAC abstraction boundary" `Quick
          test_a2_boundary;
        Alcotest.test_case "A2 default-deny (open, unknown)" `Quick
          test_a2_open_denied;
        Alcotest.test_case "A3 top-level mutable state" `Quick
          test_a3_top_state;
        Alcotest.test_case "A4 engine access discipline" `Quick
          test_a4_engine;
        Alcotest.test_case "A5 float equality" `Quick test_a5_float_eq;
        Alcotest.test_case "A6 epoch mutation discipline" `Quick
          test_a6_epoch;
        Alcotest.test_case "A6 default-deny (open Dyn)" `Quick
          test_a6_open_denied;
        Alcotest.test_case "suppression markers are per-tool" `Quick
          test_suppression_marker;
        Alcotest.test_case "allowlist" `Quick test_allowlist;
        Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        Alcotest.test_case "parse errors are findings" `Quick
          test_parse_error_is_a_finding;
        Alcotest.test_case "stale suppression comments (S1)" `Quick
          test_stale_suppression;
        Alcotest.test_case "stale allowlist entries (S2)" `Quick
          test_stale_allow_entry;
        Alcotest.test_case "real lib/ tree is clean" `Quick test_real_tree;
      ] );
  ]
