(* The determinism linter itself: fixture files under lint_fixtures/
   exercise every rule's positive hit, the suppression-comment escape
   hatch, and the allowlist escape hatch. *)

let rules_of findings = List.map (fun f -> f.Lint.rule) findings
let lines_of findings = List.map (fun f -> f.Lint.line) findings

let check_rules name expected findings =
  Alcotest.(check (list string)) name expected (rules_of findings)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- D1: Hashtbl traversal --------------------------------------------- *)

let test_d1_hit () =
  let fs = Lint.lint_file "lint_fixtures/d1_hashtbl.ml" in
  check_rules "two D1 findings" [ "D1"; "D1" ] fs;
  Alcotest.(check (list int)) "on the fold and iter lines" [ 2; 4 ] (lines_of fs)

let test_d1_suppressed () =
  check_rules "same-line and previous-line suppressions hold" []
    (Lint.lint_file "lint_fixtures/d1_suppressed.ml")

let test_d1_commutative () =
  (* Dsim.Tbl.iter_commutative is not a raw Hashtbl traversal, so only the
     bare Hashtbl.iter in the fixture fires; its message must advertise
     the commutative escape so suppressors know the sanctioned route. *)
  let fs = Lint.lint_file "lint_fixtures/d1_commutative.ml" in
  check_rules "only the raw Hashtbl.iter fires" [ "D1" ] fs;
  Alcotest.(check (list int)) "on the raw call's line" [ 6 ] (lines_of fs);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        "D1 message points at iter_commutative" true
        (Analysis.Paths.find_substring ~sub:"iter_commutative"
           f.Lint.msg
        <> None))
    fs

let test_d1_allowlisted () =
  let allow = Lint.load_allowlist "lint_fixtures/fixtures.allow" in
  check_rules "allowlist entry silences the file" []
    (Lint.lint_file ~allow "lint_fixtures/d1_allowlisted.ml");
  check_rules "without the allowlist the hit is live" [ "D1" ]
    (Lint.lint_file "lint_fixtures/d1_allowlisted.ml")

(* --- D2: ambient Random ------------------------------------------------- *)

let test_d2_hit () =
  check_rules "every Random.* ident flagged" [ "D2"; "D2"; "D2" ]
    (Lint.lint_file "lint_fixtures/d2_random.ml")

let test_d2_rng_exempt () =
  (* The same source is legal inside the one sanctioned module. *)
  let source = read_file "lint_fixtures/d2_random.ml" in
  check_rules "lib/dsim/rng.ml may touch Random" []
    (Lint.lint_source ~file:"lib/dsim/rng.ml" source)

(* --- D3: wall-clock / ambient reads, scoped to lib/ --------------------- *)

let test_d3_scope () =
  let source = read_file "lint_fixtures/d3_clock.ml" in
  check_rules "flagged under lib/" [ "D3"; "D3" ]
    (Lint.lint_source ~file:"lib/dsim/fixture.ml" source);
  check_rules "bench may read the clock" []
    (Lint.lint_source ~file:"bench/fixture.ml" source)

(* --- D4: physical equality ---------------------------------------------- *)

let test_d4_hit () =
  let fs = Lint.lint_file "lint_fixtures/d4_physeq.ml" in
  check_rules "== and != on non-ints flagged, int sentinel not" [ "D4"; "D4" ]
    fs;
  Alcotest.(check (list int)) "hit lines" [ 2; 4 ] (lines_of fs)

(* --- D5: polymorphic compare in sorts, scoped to lib/ ------------------- *)

let test_d5_scope () =
  let source = read_file "lint_fixtures/d5_polysort.ml" in
  check_rules "bare compare and wrapped compare flagged" [ "D5"; "D5" ]
    (Lint.lint_source ~file:"lib/mmb/fixture.ml" source);
  check_rules "covers every lib/ subtree" [ "D5"; "D5" ]
    (Lint.lint_source ~file:"lib/graphs/fixture.ml" source);
  check_rules "out of scope under bin/" []
    (Lint.lint_source ~file:"bin/fixture.ml" source)

(* --- D6: parallel primitives confined to lib/exec ------------------------ *)

let test_d6_scope () =
  let source = read_file "lint_fixtures/d6_domain.ml" in
  check_rules "Domain/Mutex/Atomic flagged under lib/"
    [ "D6"; "D6"; "D6"; "D6" ]
    (Lint.lint_source ~file:"lib/mmb/fixture.ml" source);
  check_rules "and under bench/" [ "D6"; "D6"; "D6"; "D6" ]
    (Lint.lint_source ~file:"bench/fixture.ml" source);
  check_rules "lib/exec is the sanctioned home" []
    (Lint.lint_source ~file:"lib/exec/pool.ml" source);
  check_rules "also when rooted elsewhere" []
    (Lint.lint_source ~file:"/root/repo/lib/exec/pool.ml" source);
  (* PR10: the horizon-parallel engine is the second sanctioned bridge. *)
  check_rules "lib/pdes joins the sanctioned scope" []
    (Lint.lint_source ~file:"lib/pdes/engine.ml" source);
  check_rules "also when rooted elsewhere" []
    (Lint.lint_source ~file:"/root/repo/lib/pdes/engine.ml" source)

(* --- Cross-rule: clean fixture, escape hatches for every rule ------------ *)

let test_clean () =
  check_rules "clean fixture has zero findings" []
    (Lint.lint_file "lint_fixtures/clean.ml")

(* (rule, minimal offending source, path it must be linted under) *)
let per_rule_hits =
  [
    ("D1", "let f t = Hashtbl.iter (fun _ _ -> ()) t", "lib/mmb/x.ml");
    ("D2", "let f () = Random.int 3", "lib/mmb/x.ml");
    ("D3", "let f () = Sys.time ()", "lib/mmb/x.ml");
    ("D4", "let f a b = a == b", "lib/mmb/x.ml");
    ("D5", "let f l = List.sort compare l", "lib/mmb/x.ml");
    ("D6", "let f () = Atomic.make 0", "lib/mmb/x.ml");
  ]

let test_every_rule_suppressible () =
  List.iter
    (fun (rule, src, file) ->
      check_rules (rule ^ " fires bare") [ rule ]
        (Lint.lint_source ~file src);
      let suppressed =
        Printf.sprintf "(* lint: allow %s *)\n%s" rule src
      in
      check_rules (rule ^ " suppressed by comment") []
        (Lint.lint_source ~file suppressed);
      check_rules (rule ^ " silenced by allowlist") []
        (Lint.lint_source ~file ~allow:[ (rule, file) ] src);
      check_rules (rule ^ " not silenced by another rule's allow entry")
        [ rule ]
        (Lint.lint_source ~file ~allow:[ ("D9", file) ] src))
    per_rule_hits

let test_parse_error_is_a_finding () =
  check_rules "unparseable source yields E0" [ "E0" ]
    (Lint.lint_source ~file:"lib/mmb/x.ml" "let = =")

(* --- Allowlist path anchoring -------------------------------------------- *)

let test_suffix_anchoring () =
  let yes suffix file =
    Alcotest.(check bool)
      (Printf.sprintf "%s matches %s" suffix file)
      true
      (Analysis.Paths.has_suffix ~suffix file)
  and no suffix file =
    Alcotest.(check bool)
      (Printf.sprintf "%s does not match %s" suffix file)
      false
      (Analysis.Paths.has_suffix ~suffix file)
  in
  yes "cache.ml" "cache.ml";
  yes "cache.ml" "lib/exec/cache.ml";
  yes "cache.ml" "/root/repo/lib/exec/cache.ml";
  no "cache.ml" "lib/exec/xcache.ml";
  no "cache.ml" "lib/exec/cache.mli";
  yes "exec/cache.ml" "lib/exec/cache.ml";
  no "exec/cache.ml" "lib/notexec/cache.ml";
  no "lib/exec/cache.ml" "fib/exec/cache.ml"

let test_allow_anchoring_end_to_end () =
  let source = "let f t = Hashtbl.iter (fun _ _ -> ()) t" in
  check_rules "suffix entry anchored at a component silences" []
    (Lint.lint_source ~file:"lib/exec/cache.ml"
       ~allow:[ ("D1", "exec/cache.ml") ]
       source);
  check_rules "a colliding basename in another dir stays live" [ "D1" ]
    (Lint.lint_source ~file:"lib/notexec/cache.ml"
       ~allow:[ ("D1", "exec/cache.ml") ]
       source);
  check_rules "a longer basename stays live too" [ "D1" ]
    (Lint.lint_source ~file:"lib/exec/xcache.ml"
       ~allow:[ ("D1", "cache.ml") ]
       source)

(* --- Stale escape hatches ------------------------------------------------ *)

let test_stale_suppression_comment () =
  let fs = Lint.run_files ~stale:true [ "lint_fixtures/stale_suppress.ml" ] in
  check_rules "a comment that suppresses nothing is reported" [ "S1" ] fs;
  Alcotest.(check (list int)) "at the comment's line" [ 2 ] (lines_of fs);
  check_rules "stale reporting is opt-out" []
    (Lint.run_files ~stale:false [ "lint_fixtures/stale_suppress.ml" ])

let test_stale_allow_entry () =
  let fs =
    Lint.run_files ~stale:true
      ~allow:(Analysis.Allow.of_pairs [ ("D1", "no/such/file.ml") ])
      [ "lint_fixtures/clean.ml" ]
  in
  check_rules "an entry that suppresses nothing is reported" [ "S2" ] fs;
  let live =
    Lint.run_files ~stale:true
      ~allow:(Analysis.Allow.of_pairs [ ("D1", "lint_fixtures/d1_allowlisted.ml") ])
      [ "lint_fixtures/d1_allowlisted.ml" ]
  in
  check_rules "a live entry is not" [] live

let suite =
  [
    ( "lint",
      [
        Alcotest.test_case "D1 Hashtbl traversal" `Quick test_d1_hit;
        Alcotest.test_case "D1 suppression comments" `Quick test_d1_suppressed;
        Alcotest.test_case "D1 commutative-traversal escape" `Quick
          test_d1_commutative;
        Alcotest.test_case "D1 allowlist" `Quick test_d1_allowlisted;
        Alcotest.test_case "D2 ambient Random" `Quick test_d2_hit;
        Alcotest.test_case "D2 rng.ml exemption" `Quick test_d2_rng_exempt;
        Alcotest.test_case "D3 clock scoped to lib/" `Quick test_d3_scope;
        Alcotest.test_case "D4 physical equality" `Quick test_d4_hit;
        Alcotest.test_case "D5 polymorphic sort" `Quick test_d5_scope;
        Alcotest.test_case "D6 parallel primitives confined to lib/exec"
          `Quick test_d6_scope;
        Alcotest.test_case "clean fixture" `Quick test_clean;
        Alcotest.test_case "suppression + allowlist for every rule" `Quick
          test_every_rule_suppressible;
        Alcotest.test_case "parse errors are findings" `Quick
          test_parse_error_is_a_finding;
        Alcotest.test_case "allowlist suffix anchoring" `Quick
          test_suffix_anchoring;
        Alcotest.test_case "allowlist anchoring end-to-end" `Quick
          test_allow_anchoring_end_to_end;
        Alcotest.test_case "stale suppression comments (S1)" `Quick
          test_stale_suppression_comment;
        Alcotest.test_case "stale allowlist entries (S2)" `Quick
          test_stale_allow_entry;
      ] );
  ]
