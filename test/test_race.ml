(* The domain-safety analyzer: fixture files under lint_fixtures/
   exercise every R-rule's positive hit and its confined counterpart
   (DLS / Atomic / registry / forced-lazy / init-scratch); the
   differential boundary test pins lint D6 and the R-rules to the same
   lib/exec frontier; reachability tests drive rules R1/R4 with the
   real tree's graph; and a real-tree scan asserts the shipped sources
   stay clean exactly as `dune build @race` runs them. *)

let rules_of findings = List.map (fun f -> f.Analysis.Finding.rule) findings
let lines_of findings = List.map (fun f -> f.Analysis.Finding.line) findings

let check_rules name expected findings =
  Alcotest.(check (list string)) name expected (rules_of findings)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Pose a fixture file at a path, so rule scopes see it "living" there. *)
let posed fixture file = Race.check_source ~file (read_file fixture)

let only rule findings =
  List.filter (fun f -> String.equal f.Analysis.Finding.rule rule) findings

(* --- R1: shared-unprotected top-level state ------------------------------ *)

let test_r1_classes () =
  let fs = posed "lint_fixtures/r1_shared.ml" "lib/mmb/fixture.ml" in
  check_rules
    "Hashtbl, ref, array, mutable record fire; Atomic and DLS don't \
     (the DLS key trips R3 instead, outside lib/exec)"
    [ "R1"; "R1"; "R1"; "R3"; "R1" ] fs;
  Alcotest.(check (list int))
    "on the allocation lines" [ 4; 6; 8; 12; 18 ] (lines_of fs);
  check_rules "shared state inside lib/exec is still shared"
    [ "R1"; "R1"; "R1"; "R1" ]
    (posed "lint_fixtures/r1_shared.ml" "lib/exec/fixture.ml");
  check_rules "a declared registry confines everything but the DLS key"
    [ "R3" ]
    (posed "lint_fixtures/r1_shared.ml" "lib/obs/global.ml");
  check_rules "out of scope outside lib/bench/bin (R3 is global)" [ "R3" ]
    (posed "lint_fixtures/r1_shared.ml" "examples/fixture.ml")

(* --- R2: mutable captures crossing the spawn boundary -------------------- *)

let test_r2_captures () =
  let fs = posed "lint_fixtures/r2_capture.ml" "lib/mmb/fixture.ml" in
  check_rules "Hashtbl capture via spawn, ref capture via Pool.run"
    [ "R2"; "R2" ] fs;
  Alcotest.(check (list int)) "at the two call sites" [ 6; 11 ] (lines_of fs);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        "message names the captured binding" true
        (Analysis.Paths.find_substring ~sub:"shared"
           f.Analysis.Finding.msg
         <> None
        || Analysis.Paths.find_substring ~sub:"acc" f.Analysis.Finding.msg
           <> None))
    fs;
  (* The Atomic-only closure is the sanctioned counterpart: silent. *)
  check_rules "R2 applies inside lib/exec too (campaign's own hazard)"
    [ "R2"; "R2" ]
    (posed "lint_fixtures/r2_capture.ml" "lib/exec/fixture.ml");
  check_rules
    "and inside lib/pdes (the engine earns Domain access, not a waiver)"
    [ "R2"; "R2" ]
    (posed "lint_fixtures/r2_capture.ml" "lib/pdes/fixture.ml")

(* --- R3: DLS confined to lib/exec ---------------------------------------- *)

let test_r3_scope () =
  let fs = posed "lint_fixtures/r3_dls.ml" "lib/obs/fixture.ml" in
  check_rules "new_key, get, set all fire outside exec" [ "R3"; "R3"; "R3" ]
    fs;
  Alcotest.(check (list int)) "on each reference" [ 3; 5; 7 ] (lines_of fs);
  check_rules "lib/exec is the sanctioned home" []
    (posed "lint_fixtures/r3_dls.ml" "lib/exec/fixture.ml");
  check_rules "also when rooted elsewhere" []
    (posed "lint_fixtures/r3_dls.ml" "/root/repo/lib/exec/fixture.ml");
  check_rules "lib/pdes is sanctioned too (PR10)" []
    (posed "lint_fixtures/r3_dls.ml" "lib/pdes/fixture.ml")

(* --- R4: lazies and memo closures ---------------------------------------- *)

let test_r4_lazy_memo () =
  let fs = posed "lint_fixtures/r4_lazy.ml" "lib/mmb/fixture.ml" in
  check_rules
    "unforced lazy and memo closure fire; forced lazy and init-scratch \
     closure stay silent"
    [ "R4"; "R4" ] fs;
  Alcotest.(check (list int))
    "at the lazy and at the captured allocation" [ 5; 12 ] (lines_of fs);
  check_rules "out of scope outside lib/bench/bin" []
    (posed "lint_fixtures/r4_lazy.ml" "examples/fixture.ml")

(* --- Differential boundary: lint D6 and the R-rules agree ---------------- *)

(* The two analyzers must draw the Domain-primitive frontier at the same
   place — lib/exec — or a refactor could satisfy one and violate the
   other silently.  For every posed path, D6 (blunt: any Domain.* use)
   and R3 (fine: DLS discipline) either both fire or both stay silent on
   a DLS-using source. *)
let test_differential_d6_boundary () =
  let source = read_file "lint_fixtures/r3_dls.ml" in
  List.iter
    (fun file ->
      let d6 = only "D6" (Lint.lint_source ~file source) <> [] in
      let r3 = only "R3" (Race.check_source ~file source) <> [] in
      Alcotest.(check bool)
        (Printf.sprintf "D6 and R3 agree at %s" file)
        d6 r3)
    [
      "lib/exec/fixture.ml";
      "lib/exec/deeper/fixture.ml";
      "/abs/path/lib/exec/fixture.ml";
      "lib/pdes/fixture.ml";
      "lib/dsim/fixture.ml";
      "lib/amac/fixture.ml";
      "lib/mmb/fixture.ml";
      "lib/obs/fixture.ml";
      "lib/race/fixture.ml";
      "bench/fixture.ml";
      "bin/fixture.ml";
      "examples/fixture.ml";
    ]

(* --- Reachability -------------------------------------------------------- *)

let lib_files () =
  Analysis.Cli.collect_files ~exts:[ ".ml" ] [ "../lib" ]

let test_reach_units () =
  let u = Race.Reach.unit_of_path in
  Alcotest.(check (option string)) "lib path" (Some "exec/Pool")
    (u "lib/exec/pool.ml");
  Alcotest.(check (option string)) "absolute lib path" (Some "mmb/Bmmb")
    (u "/root/repo/lib/mmb/bmmb.ml");
  Alcotest.(check (option string)) "bench pseudo-lib" (Some "bench/Main")
    (u "bench/main.ml");
  Alcotest.(check (option string)) "outside the tree shape" None
    (u "lint_fixtures/r1_shared.ml")

let test_reach_real_tree () =
  let reach = Race.reach_of_files (lib_files ()) in
  let reachable file = Race.Reach.worker_reachable reach ~file in
  Alcotest.(check bool) "the pool itself" true
    (reachable "../lib/exec/pool.ml");
  Alcotest.(check bool) "the registry the pool redirects" true
    (reachable "../lib/obs/global.ml");
  Alcotest.(check bool) "the engine below it" true
    (reachable "../lib/dsim/sim.ml");
  Alcotest.(check bool) "analyzer libraries never run on workers" false
    (reachable "../lib/lint/lint.ml");
  Alcotest.(check bool) "the race analyzer itself included" false
    (reachable "../lib/race/rules.ml")

(* R1 is gated on the graph: the same shared table fires on a
   worker-reachable unit and stays silent on an analyzer-only unit. *)
let test_r1_reachability_gate () =
  let rules = Race.Rules.rules ~reach:(Race.reach_of_files (lib_files ())) in
  let src = "let cache = Hashtbl.create 16" in
  check_rules "fires on a worker-reachable unit" [ "R1" ]
    (Race.check_source ~rules ~file:"../lib/dsim/sim.ml" src);
  check_rules "silent on an analyzer-only unit" []
    (Race.check_source ~rules ~file:"../lib/lint/lint.ml" src);
  check_rules "the conservative default assumes reachability" [ "R1" ]
    (Race.check_source ~file:"../lib/lint/lint.ml" src)

(* --- The inventory ------------------------------------------------------- *)

let test_inventory_real_tree () =
  let inv = Race.inventory (lib_files ()) in
  let find file name =
    List.find_map
      (fun (f, reachable, items) ->
        if Analysis.Paths.has_suffix ~suffix:file f then
          List.find_map
            (fun (i : Race.Inventory.item) ->
              if String.equal i.Race.Inventory.i_name name then
                Some (reachable, Race.Inventory.cls_to_string i.Race.Inventory.i_cls)
              else None)
            items
        else None)
      inv
  in
  Alcotest.(check (option (pair bool string)))
    "the pool's DLS key" (Some (true, "domain-local"))
    (find "lib/exec/pool.ml" "obs_key");
  Alcotest.(check (option (pair bool string)))
    "the observability registry" (Some (true, "registry-confined"))
    (find "lib/obs/global.ml" "main_registry");
  (* The load-bearing assertion: no shared-unprotected item anywhere. *)
  List.iter
    (fun (file, _, items) ->
      List.iter
        (fun (i : Race.Inventory.item) ->
          if i.Race.Inventory.i_cls = Race.Inventory.Shared then
            Alcotest.failf "shared-unprotected state %s in %s"
              i.Race.Inventory.i_name file)
        items)
    inv

(* --- Escape hatches ------------------------------------------------------ *)

let test_suppression_marker () =
  let src = "(* race: allow R1 *)\nlet counter = ref 0" in
  check_rules "the race marker suppresses" []
    (Race.check_source ~file:"lib/mmb/fixture.ml" src);
  let src' = "(* lint: allow R1 *)\nlet counter = ref 0" in
  check_rules "the lint's marker does not silence this tool" [ "R1" ]
    (Race.check_source ~file:"lib/mmb/fixture.ml" src')

let test_allowlist () =
  let file = "lib/mmb/fixture.ml" in
  let src = "let counter = ref 0" in
  check_rules "allowlist entry silences the file" []
    (Race.check_source ~file ~allow:[ ("R1", file) ] src);
  check_rules "another rule's entry does not" [ "R1" ]
    (Race.check_source ~file ~allow:[ ("R2", file) ] src)

let test_stale_hatches () =
  let fs =
    Race.run_files ~stale:true
      ~allow:(Analysis.Allow.of_pairs [ ("R1", "nowhere/such_file.ml") ])
      [ "lint_fixtures/clean.ml" ]
  in
  check_rules "an entry suppressing nothing is reported" [ "S2" ] fs

(* --- The shared mmb-analysis/1 envelope (all three tools) ---------------- *)

let member_string json key =
  match Dsim.Json.member_opt json key with
  | Some (Dsim.Json.String s) -> Some s
  | _ -> None

let test_envelope () =
  List.iter
    (fun (tool, findings) ->
      let text = Analysis.Report.to_json ~tool ~files:1 findings in
      match Dsim.Json.parse text with
      | Error e -> Alcotest.failf "%s envelope does not parse: %s" tool e
      | Ok json ->
          Alcotest.(check (option string))
            (tool ^ " schema") (Some "mmb-analysis/1")
            (member_string json "schema");
          Alcotest.(check (option string))
            (tool ^ " tool field") (Some tool) (member_string json "tool");
          Alcotest.(check (result int string))
            (tool ^ " version")
            (Ok Analysis.Report.version)
            (Dsim.Json.member_int json "version" ~default:0);
          match Dsim.Json.member_opt json "findings" with
          | Some (Dsim.Json.List fs) ->
              List.iter
                (fun f ->
                  List.iter
                    (fun key ->
                      Alcotest.(check bool)
                        (tool ^ " finding has " ^ key)
                        true
                        (Dsim.Json.member_opt f key <> None))
                    [ "rule"; "file"; "line"; "col"; "msg" ])
                fs
          | _ -> Alcotest.failf "%s envelope has no findings array" tool)
    [
      ("mmb_lint", Lint.lint_source ~file:"lib/mmb/x.ml" "let f () = Random.int 3");
      ( "mmb_check",
        Check.check_source ~file:"lib/mmb/x.ml" "let c = Obs.Metrics.create ()"
      );
      ("mmb_race", Race.check_source ~file:"lib/mmb/x.ml" "let c = ref 0");
    ]

(* --- The real tree ------------------------------------------------------- *)

(* The same scan `dune build @race` performs, minus bin/bench (the test
   binary sees only lib/ staged next to it): the shipped sources must be
   clean under the shipped allowlist, with no stale hatches. *)
let test_real_tree () =
  let files = lib_files () in
  Alcotest.(check bool)
    (Printf.sprintf "scanned a substantial tree (%d files)" (List.length files))
    true
    (List.length files > 50);
  let allow = Analysis.Allow.load "../race.allow" in
  let fs = Race.run_files ~allow ~stale:true files in
  Alcotest.(check (list string)) "lib/ is domain-safety-clean" []
    (List.map Analysis.Finding.to_string fs)

let suite =
  [
    ( "race",
      [
        Alcotest.test_case "R1 lattice classes" `Quick test_r1_classes;
        Alcotest.test_case "R2 spawn-boundary captures" `Quick
          test_r2_captures;
        Alcotest.test_case "R3 DLS confined to lib/exec" `Quick
          test_r3_scope;
        Alcotest.test_case "R4 lazies and memo closures" `Quick
          test_r4_lazy_memo;
        Alcotest.test_case "differential: D6 and R3 share the boundary"
          `Quick test_differential_d6_boundary;
        Alcotest.test_case "unit resolution" `Quick test_reach_units;
        Alcotest.test_case "reachability over the real tree" `Quick
          test_reach_real_tree;
        Alcotest.test_case "R1 gated on reachability" `Quick
          test_r1_reachability_gate;
        Alcotest.test_case "inventory over the real tree" `Quick
          test_inventory_real_tree;
        Alcotest.test_case "suppression markers are per-tool" `Quick
          test_suppression_marker;
        Alcotest.test_case "allowlist" `Quick test_allowlist;
        Alcotest.test_case "stale allowlist entries (S2)" `Quick
          test_stale_hatches;
        Alcotest.test_case "mmb-analysis/1 envelope across tools" `Quick
          test_envelope;
        Alcotest.test_case "real lib/ tree is clean" `Quick test_real_tree;
      ] );
  ]
