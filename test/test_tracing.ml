(* The observability exports (lib/obs Tracing/Provenance/Perf_diff and
   lib/exec Telemetry): determinism of the trace files, the provenance
   DAG's structural invariants, the perf-diff verdicts, and the
   zero-allocation contract of Dsim.Trace dispatch when tracing is off. *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_path name =
  let p = Filename.concat "_tracing_test" name in
  rm_rf p;
  Exec.Cache.mkdir_p "_tracing_test";
  p

(* One observed BMMB run with a retained trace. *)
let traced_run ~seed =
  let n = 12 in
  let dual = Graphs.Dual.of_equal (Graphs.Gen.line n) in
  let rng = Dsim.Rng.create ~seed in
  let assignment = Mmb.Problem.random rng ~n ~k:3 in
  let res =
    Obs.Run.bmmb ~dual ~fack:20. ~fprog:1.
      ~policy:(Amac.Schedulers.random_compliant ())
      ~assignment ~seed ~check_compliance:true ()
  in
  match res.Mmb.Runner.trace with
  | Some tr -> (n, tr)
  | None -> Alcotest.fail "run retained no trace"

let perfetto_string ~n tr =
  let col = Obs.Tracing.Sim.create ~n () in
  Dsim.Trace.iter tr (Obs.Tracing.Sim.on_entry col);
  Obs.Tracing.to_string (Obs.Tracing.Sim.finish col)

(* --- Dsim.Trace dispatch: zero allocation when off ------------------------ *)

let test_record_zero_alloc_when_off () =
  let tr = Dsim.Trace.create ~enabled:false () in
  let event = Dsim.Trace.Arrive { node = 1; msg = 2 } in
  (* Warm up so any one-time allocation is out of the measured window. *)
  Dsim.Trace.record tr ~time:1. event;
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Dsim.Trace.record tr ~time:1. event
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "100k records on a disabled trace allocated %.0f words"
       allocated)
    true
    (allocated < 512.);
  Alcotest.(check int) "records still counted" 100_001 (Dsim.Trace.recorded tr)

(* The MAC plan-time path (policy consult + delivery-plan build) with
   tracing off: PR 5's pools and epoch-stamped scratch make a steady-
   state bcast→ack cycle allocate a small constant — the instance
   record, the plan, the simulator event — independent of history.  A
   leak (per-cycle table growth, retained plans) shows up as a growing
   per-cycle figure; the bound is deliberately a few dozen times the
   honest cost so only real regressions trip it. *)
let test_mac_plan_path_alloc_bounded () =
  let dual = Graphs.Dual.of_equal (Graphs.Gen.line 2) in
  let sim = Dsim.Sim.create () in
  let rng = Dsim.Rng.create ~seed:0 in
  let mac =
    Amac.Standard_mac.create ~sim ~dual ~fack:10. ~fprog:1.
      ~policy:(Amac.Schedulers.eager ()) ~rng ()
  in
  for node = 0 to 1 do
    Amac.Standard_mac.attach mac ~node
      { Amac.Mac_intf.on_rcv = (fun ~src:_ _ -> ()); on_ack = (fun _ -> ()) }
  done;
  let t = ref 0. in
  let cycle msg =
    ignore
      (Dsim.Sim.schedule_at sim ~time:!t (fun () ->
           Amac.Standard_mac.bcast mac ~node:0 msg));
    ignore (Dsim.Sim.run sim);
    t := !t +. 100.
  in
  (* Warm up: pools, scratch arrays and the heap reach steady state. *)
  for i = 1 to 64 do
    cycle i
  done;
  let cycles = 1_000 in
  let before = Gc.minor_words () in
  for i = 1 to cycles do
    cycle (64 + i)
  done;
  let per_cycle = (Gc.minor_words () -. before) /. float_of_int cycles in
  Alcotest.(check bool)
    (Printf.sprintf
       "steady-state bcast cycle allocates %.1f minor words" per_cycle)
    true (per_cycle < 256.);
  Alcotest.(check int) "all bcasts acked" (64 + cycles)
    (Amac.Standard_mac.ack_count mac)

let test_subscribers_fire_in_registration_order () =
  let tr = Dsim.Trace.create ~enabled:false () in
  let seen = ref [] in
  Dsim.Trace.subscribe tr (fun _ -> seen := "a" :: !seen);
  Dsim.Trace.subscribe tr (fun _ -> seen := "b" :: !seen);
  Dsim.Trace.record tr ~time:0. (Dsim.Trace.Arrive { node = 0; msg = 0 });
  Alcotest.(check (list string))
    "registration order" [ "a"; "b" ] (List.rev !seen)

(* --- Perfetto export ------------------------------------------------------- *)

let test_trace_same_seed_byte_identical () =
  let n, tr1 = traced_run ~seed:11 in
  let _, tr2 = traced_run ~seed:11 in
  Alcotest.(check string)
    "same seed, byte-identical Perfetto document" (perfetto_string ~n tr1)
    (perfetto_string ~n tr2)

let test_trace_validates () =
  let n, tr = traced_run ~seed:4 in
  let doc = perfetto_string ~n tr in
  (match Obs.Tracing.validate_string doc with
  | Ok count -> Alcotest.(check bool) "has events" true (count > 0)
  | Error e -> Alcotest.fail e);
  (match Obs.Tracing.validate_string "{\"traceEvents\":[]}" with
  | Ok _ -> Alcotest.fail "schema-less document must not validate"
  | Error _ -> ());
  match
    Obs.Tracing.validate_string
      "{\"traceEvents\":[],\"otherData\":{\"schema\":\"bogus/9\"}}"
  with
  | Ok _ -> Alcotest.fail "wrong schema must not validate"
  | Error _ -> ()

(* --- Provenance ------------------------------------------------------------ *)

let provenance_of ~n tr =
  let p = Obs.Provenance.create ~n () in
  Dsim.Trace.iter tr (Obs.Provenance.on_entry p);
  p

let test_provenance_dag_invariants () =
  let n, tr = traced_run ~seed:7 in
  let p = provenance_of ~n tr in
  let msgs = Obs.Provenance.messages p in
  Alcotest.(check int) "all 3 messages observed" 3 (List.length msgs);
  (* Roots must be the origin Arrive events of the underlying trace. *)
  let arrives = Hashtbl.create 8 in
  Dsim.Trace.iter tr (fun { Dsim.Trace.time; event } ->
      match event with
      | Dsim.Trace.Arrive { node; msg } ->
          if not (Hashtbl.mem arrives msg) then
            Hashtbl.replace arrives msg (node, time)
      | _ -> ());
  List.iter
    (fun msg ->
      let root = Obs.Provenance.root p msg in
      Alcotest.(check bool)
        (Printf.sprintf "msg %d root is its Arrive" msg)
        true
        (root = Hashtbl.find_opt arrives msg);
      (* Acyclicity / forest shape: walking receipts in event order, every
         receipt's node is new and its source already knows the message. *)
      let knowing = Hashtbl.create 16 in
      (match root with
      | Some (node, _) -> Hashtbl.replace knowing node ()
      | None -> Alcotest.fail "message without a root");
      let receipts = Obs.Provenance.receipts p msg in
      Alcotest.(check int)
        (Printf.sprintf "msg %d reaches all other nodes" msg)
        (n - 1) (List.length receipts);
      List.iter
        (fun r ->
          Alcotest.(check bool)
            "receipt node is new" false
            (Hashtbl.mem knowing r.Obs.Provenance.r_node);
          (match r.Obs.Provenance.r_src with
          | Some src ->
              Alcotest.(check bool)
                "edge source already knew the message" true
                (Hashtbl.mem knowing src)
          | None -> Alcotest.fail "receipt without an observed broadcast");
          Alcotest.(check bool)
            "depth is at least one hop" true
            (r.Obs.Provenance.r_depth >= 1);
          (* The queue/mac split telescopes: accumulated components along
             the causal path equal receipt time minus arrival time. *)
          let arrive_t = snd (Option.get root) in
          Alcotest.(check (float 1e-9))
            "cum queue + cum mac = elapsed since arrival"
            (r.Obs.Provenance.r_time -. arrive_t)
            (r.Obs.Provenance.r_cum_queue +. r.Obs.Provenance.r_cum_mac);
          Hashtbl.replace knowing r.Obs.Provenance.r_node ())
        receipts)
    msgs

let test_provenance_export_validates () =
  let n, tr = traced_run ~seed:9 in
  let p = provenance_of ~n tr in
  let text = String.concat "\n" (Obs.Provenance.jsonl p) in
  (match Obs.Provenance.validate_string text with
  | Ok lines -> Alcotest.(check bool) "has lines" true (lines > 1)
  | Error e -> Alcotest.fail e);
  match Obs.Provenance.validate_string "{\"kind\":\"meta\",\"schema\":\"x\"}" with
  | Ok _ -> Alcotest.fail "wrong schema must not validate"
  | Error _ -> ()

(* --- Campaign timelines ---------------------------------------------------- *)

let sim_job seed =
  Exec.Job.make
    ~spec:
      (Dsim.Json.Obj
         [
           ("kind", Dsim.Json.String "tracing-bmmb");
           ("seed", Dsim.Json.Number (float_of_int seed));
         ])
    (fun () ->
      let dual = Graphs.Dual.of_equal (Graphs.Gen.line 12) in
      let rng = Dsim.Rng.create ~seed in
      let assignment = Mmb.Problem.random rng ~n:12 ~k:3 in
      let res =
        Obs.Run.bmmb ~dual ~fack:20. ~fprog:1.
          ~policy:(Amac.Schedulers.random_compliant ())
          ~assignment ~seed ()
      in
      Exec.Sink.printf "seed=%d time=%.1f\n" seed res.Mmb.Runner.time;
      Dsim.Json.Obj [ ("time", Dsim.Json.Number res.Mmb.Runner.time) ])

let virtual_doc outcomes =
  Obs.Tracing.to_string (Exec.Telemetry.virtual_trace outcomes)

let test_campaign_trace_identity_across_jobs () =
  let job_list () = List.init 6 sim_job in
  let o1, _ = Exec.Campaign.run ~jobs:1 (job_list ()) in
  let o2, _ = Exec.Campaign.run ~jobs:2 (job_list ()) in
  let o4, _ = Exec.Campaign.run ~jobs:4 (job_list ()) in
  Alcotest.(check string)
    "virtual timeline, jobs 1 = jobs 2" (virtual_doc o1) (virtual_doc o2);
  Alcotest.(check string)
    "virtual timeline, jobs 1 = jobs 4" (virtual_doc o1) (virtual_doc o4)

let test_campaign_trace_identity_ran_vs_cached () =
  let dir = fresh_path "cache" in
  let job_list () = List.init 4 sim_job in
  let cache = Exec.Cache.create ~dir in
  let ran, s1 = Exec.Campaign.run ~jobs:2 ~cache (job_list ()) in
  let cached, s2 = Exec.Campaign.run ~jobs:2 ~cache (job_list ()) in
  Alcotest.(check int) "first run executed" 4 s1.Exec.Campaign.ran;
  Alcotest.(check int) "second run fully cached" 4 s2.Exec.Campaign.cached;
  Alcotest.(check string)
    "virtual timeline, ran = cached" (virtual_doc ran) (virtual_doc cached)

let test_campaign_telemetry_and_global_counters () =
  let dir = fresh_path "cache-counters" in
  let cache = Exec.Cache.create ~dir in
  (* A deterministic injected clock: each reading advances 0.25s. *)
  let ticks = ref 0 in
  let clock () =
    incr ticks;
    0.25 *. float_of_int !ticks
  in
  let before = Obs.Global.snapshot () in
  let _, s1 = Exec.Campaign.run ~jobs:2 ~cache ~clock (List.init 3 sim_job) in
  let outcomes, s2 =
    Exec.Campaign.run ~jobs:2 ~cache ~clock (List.init 3 sim_job)
  in
  let delta =
    Obs.Global.diff ~before ~after:(Obs.Global.snapshot ())
  in
  Alcotest.(check int) "3 misses on the cold run" 3 s1.Exec.Campaign.cache_misses;
  Alcotest.(check int) "3 hits on the warm run" 3 s2.Exec.Campaign.cache_hits;
  Alcotest.(check int)
    "cache traffic reaches Obs.Global" 3 delta.Obs.Global.cache_hits;
  Alcotest.(check int)
    "misses too" 3 delta.Obs.Global.cache_misses;
  Alcotest.(check bool)
    "executed jobs accumulated busy time" true
    (s1.Exec.Campaign.busy_s > 0.);
  Alcotest.(check bool)
    "busy time reaches Obs.Global" true
    (delta.Obs.Global.pool_busy_us > 0);
  Alcotest.(check bool)
    "elapsed spans the campaign" true
    (s1.Exec.Campaign.elapsed_s > 0.);
  let summary = Exec.Telemetry.summary ~jobs:2 s1 in
  Alcotest.(check bool)
    "summary reports utilization" true
    (let needle = "pool utilization" in
     let rec find i =
       i + String.length needle <= String.length summary
       && (String.sub summary i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  (* Replayed outcomes carry no worker placement. *)
  Array.iter
    (fun o ->
      Alcotest.(check int)
        "cached outcome has no worker" (-1) o.Exec.Campaign.worker)
    outcomes;
  (* The wall timeline only contains executed jobs: empty here. *)
  Alcotest.(check int)
    "wall trace of a fully-cached run has only metadata" 1
    (Obs.Tracing.event_count (Exec.Telemetry.wall_trace outcomes))

(* --- Perf diff ------------------------------------------------------------- *)

let perf_entry ~label benches =
  {
    Obs.Perf_diff.e_label = label;
    e_benches =
      List.map
        (fun (id, events, rate, mw) ->
          { Obs.Perf_diff.b_id = id; b_events = events; b_rate = rate; b_mw = mw })
        benches;
  }

let statuses report =
  List.map
    (fun f ->
      match f.Obs.Perf_diff.f_status with
      | Obs.Perf_diff.Pass -> "pass"
      | Obs.Perf_diff.Regression -> "regression"
      | Obs.Perf_diff.Incomparable -> "incomparable")
    report.Obs.Perf_diff.findings

let test_perf_diff_verdicts () =
  let base =
    perf_entry ~label:"base"
      [
        ("steady", 100., 1000., 10.);
        ("dropped", 100., 1000., 10.);
        ("bloated", 100., 1000., 10.);
        ("gone", 100., 1000., 10.);
        ("zero", 0., 0., 0.);
      ]
  in
  let cand =
    perf_entry ~label:"cand"
      [
        ("steady", 100., 980., 10.);
        ("dropped", 100., 500., 10.);
        ("bloated", 100., 1000., 20.);
        ("zero", 0., 0., 0.);
      ]
  in
  let report = Obs.Perf_diff.compare_entries base cand in
  Alcotest.(check (list string))
    "verdicts"
    [ "pass"; "regression"; "regression"; "incomparable"; "incomparable" ]
    (statuses report);
  Alcotest.(check int) "2 regressions" 2 (Obs.Perf_diff.regressions report);
  Alcotest.(check int) "2 incomparable" 2 (Obs.Perf_diff.incomparable report)

let test_perf_diff_equal_events_gate () =
  let base = perf_entry ~label:"b" [ ("x", 100., 1000., Float.nan) ] in
  let cand = perf_entry ~label:"c" [ ("x", 101., 1000., Float.nan) ] in
  let report =
    Obs.Perf_diff.compare_entries ~require_equal_events:true base cand
  in
  Alcotest.(check (list string))
    "changed event count is incomparable" [ "incomparable" ] (statuses report);
  let relaxed = Obs.Perf_diff.compare_entries base cand in
  Alcotest.(check (list string))
    "without the gate it passes" [ "pass" ] (statuses relaxed)

let test_perf_diff_selectors () =
  let entries =
    [
      perf_entry ~label:"seed baseline" [];
      perf_entry ~label:"after: PR5" [];
      perf_entry ~label:"after: PR7" [];
    ]
  in
  let label = function
    | Ok e -> e.Obs.Perf_diff.e_label
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check string)
    "-1 is the newest" "after: PR7"
    (label (Obs.Perf_diff.select entries (Obs.Perf_diff.Index (-1))));
  Alcotest.(check string)
    "-2 is the previous" "after: PR5"
    (label (Obs.Perf_diff.select entries (Obs.Perf_diff.Index (-2))));
  Alcotest.(check string)
    "0 is the oldest" "seed baseline"
    (label (Obs.Perf_diff.select entries (Obs.Perf_diff.Index 0)));
  Alcotest.(check string)
    "label substring picks the newest match" "after: PR7"
    (label (Obs.Perf_diff.select entries (Obs.Perf_diff.Label "after:")));
  (match Obs.Perf_diff.select entries (Obs.Perf_diff.Index 5) with
  | Ok _ -> Alcotest.fail "out-of-range index must fail"
  | Error _ -> ());
  match Obs.Perf_diff.select entries (Obs.Perf_diff.Label "nope") with
  | Ok _ -> Alcotest.fail "unmatched label must fail"
  | Error _ -> ()

let test_perf_diff_parses_history () =
  let text =
    {|{"schema":"mmb-bench-perf/1","entries":[
       {"label":"a","mode":"full","results":[
         {"id":"x","events":10,"wall_s":1,"events_per_sec":10,
          "minor_words_per_event":2,"heap_high_water":1}]},
       {"label":"b","mode":"full","results":[
         {"id":"x","events":10,"wall_s":1,"events_per_sec":11,
          "minor_words_per_event":2,"heap_high_water":1}]}]}|}
  in
  match Obs.Perf_diff.entries_of_string text with
  | Error e -> Alcotest.fail e
  | Ok entries ->
      Alcotest.(check int) "two entries" 2 (List.length entries);
      let report =
        Obs.Perf_diff.compare_entries (List.nth entries 0) (List.nth entries 1)
      in
      Alcotest.(check (list string)) "faster is fine" [ "pass" ]
        (statuses report)

let suite =
  [
    ( "tracing",
      [
        Alcotest.test_case "record allocates nothing when off" `Quick
          test_record_zero_alloc_when_off;
        Alcotest.test_case "MAC plan path allocates O(1) per cycle" `Quick
          test_mac_plan_path_alloc_bounded;
        Alcotest.test_case "subscribers fire in registration order" `Quick
          test_subscribers_fire_in_registration_order;
        Alcotest.test_case "same seed, byte-identical Perfetto trace" `Slow
          test_trace_same_seed_byte_identical;
        Alcotest.test_case "Perfetto document validates" `Quick
          test_trace_validates;
        Alcotest.test_case "provenance DAG invariants" `Quick
          test_provenance_dag_invariants;
        Alcotest.test_case "provenance export validates" `Quick
          test_provenance_export_validates;
        Alcotest.test_case "campaign timeline identical for jobs 1/2/4" `Slow
          test_campaign_trace_identity_across_jobs;
        Alcotest.test_case "campaign timeline identical ran vs cached" `Slow
          test_campaign_trace_identity_ran_vs_cached;
        Alcotest.test_case "campaign telemetry and Obs.Global counters" `Slow
          test_campaign_telemetry_and_global_counters;
        Alcotest.test_case "perf-diff verdicts" `Quick test_perf_diff_verdicts;
        Alcotest.test_case "perf-diff equal-events gate" `Quick
          test_perf_diff_equal_events_gate;
        Alcotest.test_case "perf-diff entry selectors" `Quick
          test_perf_diff_selectors;
        Alcotest.test_case "perf-diff parses bench history" `Quick
          test_perf_diff_parses_history;
      ] );
  ]
