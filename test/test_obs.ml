(* The observability layer: metric registry + histograms, span derivation,
   streaming-compliance parity with the post-hoc auditor, engine profiling
   accessors, trace ring buffers, and determinism of the JSONL export. *)

module M = Obs.Metrics

let floats_eq = Alcotest.float 1e-12

(* --- registry ----------------------------------------------------------- *)

let test_registry () =
  let m = M.create () in
  let c = M.counter m "events.x" in
  M.incr c;
  M.incr ~by:3 c;
  Alcotest.(check int) "counter accumulates" 4 (M.value c);
  let c' = M.counter m "events.x" in
  M.incr c';
  Alcotest.(check int) "same-name counter is the same cell" 5 (M.value c);
  Alcotest.check_raises "cross-kind re-registration rejected"
    (Invalid_argument "Metrics: events.x registered twice")
    (fun () -> ignore (M.gauge m "events.x"));
  let g = M.gauge m "hw" in
  M.set g 2.;
  M.set_max g 1.;
  M.set_max g 7.;
  let lines = M.snapshot m in
  let names =
    List.map
      (fun j -> Result.get_ok (Dsim.Json.member_str j "name" ~default:""))
      lines
  in
  Alcotest.(check (list string)) "snapshot sorted by name" [ "events.x"; "hw" ]
    names;
  let hw = List.nth lines 1 in
  Alcotest.(check (float 0.)) "set_max keeps the high water" 7.
    (Result.get_ok (Dsim.Json.member_float hw "value" ~default:nan))

let test_volatile_excluded () =
  let m = M.create () in
  ignore (M.counter m "a");
  let g = M.gauge m ~volatile:true "wall" in
  M.set g 0.123;
  M.probe m ~volatile:true "wall2" (fun () -> 9.);
  Alcotest.(check int) "default snapshot drops volatile metrics" 1
    (List.length (M.snapshot m));
  Alcotest.(check int) "include_volatile restores them" 3
    (List.length (M.snapshot ~include_volatile:true m))

(* --- histograms --------------------------------------------------------- *)

let buckets_of m name =
  let line =
    List.find
      (fun j ->
        Result.get_ok (Dsim.Json.member_str j "name" ~default:"") = name)
      (M.snapshot m)
  in
  List.map
    (fun t ->
      match Result.get_ok (Dsim.Json.to_list t) with
      | [ lo; hi; c ] ->
          ( Result.get_ok (Dsim.Json.to_float lo),
            Result.get_ok (Dsim.Json.to_float hi),
            Result.get_ok (Dsim.Json.to_int c) )
      | _ -> Alcotest.fail "bucket triple shape")
    (Result.get_ok
       (Dsim.Json.to_list (Result.get_ok (Dsim.Json.member line "buckets"))))

let test_hist_bucket_boundaries () =
  let m = M.create () in
  let h = M.histogram m ~gamma:2. "h" in
  Alcotest.(check (float 0.)) "boundary 0 is 1" 1. (M.boundary h 0);
  Alcotest.(check (float 0.)) "boundary 3 is gamma^3" 8. (M.boundary h 3);
  (* A value exactly on a boundary belongs to the bucket it opens. *)
  List.iter (M.observe h) [ 1.0; 2.0; 3.999; 0.5; 4.0 ];
  Alcotest.(check (list (triple floats_eq floats_eq Alcotest.int)))
    "half-open [gamma^i, gamma^(i+1)) buckets"
    [ (0.5, 1., 1); (1., 2., 1); (2., 4., 2); (4., 8., 1) ]
    (buckets_of m "h");
  (* Every positive observation lands in a bucket containing it. *)
  List.iter
    (fun v ->
      let m3 = M.create () in
      let h3 = M.histogram m3 "one" in
      M.observe h3 v;
      match buckets_of m3 "one" with
      | [ (lo, hi, 1) ] ->
          Alcotest.(check bool)
            (Printf.sprintf "%g inside its bucket [%g, %g)" v lo hi)
            true
            (lo <= v && v < hi)
      | _ -> Alcotest.fail "expected exactly one bucket")
    [ 1e-9; 0.3; 1.0; 1.189207115002721; 17.3; 65536.; 1e12 ]

let test_hist_zeros_and_stats () =
  let m = M.create () in
  let h = M.histogram m ~gamma:2. "h" in
  Alcotest.(check bool) "empty max is nan" true (Float.is_nan (M.hist_max h));
  List.iter (M.observe h) [ 0.; -3.; 5.; 1. ];
  Alcotest.(check int) "count includes zeros" 4 (M.hist_count h);
  Alcotest.(check (float 0.)) "sum" 3. (M.hist_sum h);
  Alcotest.(check (float 0.)) "exact min" (-3.) (M.hist_min h);
  Alcotest.(check (float 0.)) "exact max" 5. (M.hist_max h)

let test_hist_quantiles () =
  let m = M.create () in
  let h = M.histogram m ~gamma:2. "q" in
  List.iter (M.observe h) [ 1.; 2.; 4.; 8. ];
  Alcotest.(check (float 0.)) "q=0.25 -> first bucket's upper edge" 2.
    (M.quantile h 0.25);
  Alcotest.(check (float 0.)) "q=0.5" 4. (M.quantile h 0.5);
  Alcotest.(check (float 0.)) "q=1 clamps to the observed max" 8.
    (M.quantile h 1.);
  let hz = M.histogram m ~gamma:2. "qz" in
  List.iter (M.observe hz) [ 0.; 0.; 0.; 8. ];
  Alcotest.(check (float 0.)) "ranks inside the zeros bucket yield 0" 0.
    (M.quantile hz 0.5);
  Alcotest.(check (float 0.)) "top rank escapes the zeros bucket" 8.
    (M.quantile hz 1.);
  Alcotest.check_raises "gamma must exceed 1"
    (Invalid_argument "Metrics.histogram: gamma must be > 1") (fun () ->
      ignore (M.histogram m ~gamma:1. "bad"))

(* --- spans --------------------------------------------------------------- *)

let feed spans entries =
  List.iter
    (fun (time, event) -> Obs.Spans.on_entry spans { Dsim.Trace.time; event })
    entries

let test_span_lifecycle () =
  let m = M.create () in
  let s = Obs.Spans.create ~n:2 ~metrics:m () in
  feed s
    [
      (* Deliver before the arrival is seen: counted, latency skipped. *)
      (1., Dsim.Trace.Deliver { node = 0; msg = 5 });
      (2., Dsim.Trace.Arrive { node = 0; msg = 5 });
      (3., Dsim.Trace.Deliver { node = 1; msg = 5 });
    ];
  Alcotest.(check int) "one message seen" 1 (Obs.Spans.messages_seen s);
  Alcotest.(check int) "complete at n deliveries" 1
    (Obs.Spans.messages_complete s);
  Alcotest.(check int) "frontier counts both deliveries" 2
    (Obs.Spans.total_delivers s);
  Alcotest.(check (float 0.)) "clock follows the last event" 3.
    (Obs.Spans.last_time s);
  let lat = M.histogram m "span.deliver_latency" in
  Alcotest.(check int) "pre-arrival delivery skips the latency histogram" 1
    (M.hist_count lat);
  match Obs.Spans.span_lines s with
  | [ line ] ->
      Alcotest.(check int) "span msg id" 5
        (Result.get_ok (Dsim.Json.member_int line "msg" ~default:(-1)));
      Alcotest.(check (float 0.)) "completion time" 3.
        (Result.get_ok (Dsim.Json.member_float line "complete" ~default:nan));
      Alcotest.(check bool) "first_bcast unknown -> null" true
        (Result.get_ok (Dsim.Json.member line "first_bcast") = Dsim.Json.Null)
  | ls -> Alcotest.failf "expected 1 span line, got %d" (List.length ls)

let test_span_orphans_and_aborts () =
  let m = M.create () in
  let s = Obs.Spans.create ~n:3 ~metrics:m () in
  feed s
    [
      (0., Dsim.Trace.Ack { node = 0; msg = 1; instance = 99 });
      (1., Dsim.Trace.Bcast { node = 0; msg = 1; instance = 7 });
      (2., Dsim.Trace.Abort { node = 0; msg = 1; instance = 7 });
      (* Ack after abort: the instance is gone, so this is an orphan too
         and must not contribute ack latency. *)
      (3., Dsim.Trace.Ack { node = 0; msg = 1; instance = 7 });
    ];
  Alcotest.(check int) "both stray acks counted as orphans" 2
    (M.value (M.counter m "events.orphan"));
  Alcotest.(check int) "aborted instance contributes no ack latency" 0
    (M.hist_count (M.histogram m "mac.ack_latency"))

(* --- streaming monitor: parity with the post-hoc auditor ----------------- *)

let line2 = lazy (Graphs.Dual.of_equal (Graphs.Gen.line 2))

let entries_to_trace entries =
  let tr = Dsim.Trace.create () in
  List.iter (fun (time, event) -> Dsim.Trace.record tr ~time event) entries;
  tr

let check_parity ?(fack = 10.) ?(fprog = 2.) ?(allow_open = false) name dual tr
    =
  let expected = Amac.Compliance.audit ~dual ~fack ~fprog ~allow_open tr in
  let mon = Obs.Monitor.create ~dual ~fack ~fprog () in
  Dsim.Trace.iter tr (Obs.Monitor.on_entry mon);
  let actual = Obs.Monitor.finish ~allow_open mon in
  let key v = v.Amac.Compliance.rule ^ " | " ^ v.Amac.Compliance.detail in
  Alcotest.(check (list string))
    (name ^ ": same violation multiset as the auditor")
    (List.sort String.compare (List.map key expected))
    (List.sort String.compare (List.map key actual))

let crafted_traces =
  (* Mirrors test_compliance.ml's per-axiom traces: one per rule plus a
     clean one, so parity is exercised on every violation constructor. *)
  [
    ( "clean",
      2,
      [
        (0., Dsim.Trace.Bcast { node = 0; msg = 1; instance = 1 });
        (1., Dsim.Trace.Rcv { node = 1; msg = 1; instance = 1 });
        (1., Dsim.Trace.Ack { node = 0; msg = 1; instance = 1 });
      ] );
    ( "rcv to non-neighbor",
      3,
      [
        (0., Dsim.Trace.Bcast { node = 0; msg = 1; instance = 1 });
        (0.5, Dsim.Trace.Rcv { node = 1; msg = 1; instance = 1 });
        (1., Dsim.Trace.Rcv { node = 2; msg = 1; instance = 1 });
        (1., Dsim.Trace.Ack { node = 0; msg = 1; instance = 1 });
      ] );
    ( "duplicate rcv",
      2,
      [
        (0., Dsim.Trace.Bcast { node = 0; msg = 1; instance = 1 });
        (0.5, Dsim.Trace.Rcv { node = 1; msg = 1; instance = 1 });
        (0.7, Dsim.Trace.Rcv { node = 1; msg = 1; instance = 1 });
        (1., Dsim.Trace.Ack { node = 0; msg = 1; instance = 1 });
      ] );
    ( "rcv after ack",
      2,
      [
        (0., Dsim.Trace.Bcast { node = 0; msg = 1; instance = 1 });
        (0.4, Dsim.Trace.Rcv { node = 1; msg = 1; instance = 1 });
        (0.5, Dsim.Trace.Ack { node = 0; msg = 1; instance = 1 });
        (0.9, Dsim.Trace.Rcv { node = 1; msg = 1; instance = 1 });
      ] );
    ( "ack without G delivery",
      2,
      [
        (0., Dsim.Trace.Bcast { node = 0; msg = 1; instance = 1 });
        (1., Dsim.Trace.Ack { node = 0; msg = 1; instance = 1 });
      ] );
    ( "unterminated instance",
      2,
      [ (0., Dsim.Trace.Bcast { node = 0; msg = 1; instance = 1 }) ] );
    ( "progress starvation",
      2,
      [
        (0., Dsim.Trace.Bcast { node = 0; msg = 1; instance = 1 });
        (10., Dsim.Trace.Rcv { node = 1; msg = 1; instance = 1 });
        (10., Dsim.Trace.Ack { node = 0; msg = 1; instance = 1 });
      ] );
  ]

let test_monitor_parity_crafted () =
  List.iter
    (fun (name, n, entries) ->
      let dual = Graphs.Dual.of_equal (Graphs.Gen.line n) in
      check_parity name dual (entries_to_trace entries);
      check_parity (name ^ " (allow_open)") ~allow_open:true dual
        (entries_to_trace entries))
    crafted_traces;
  (* Tight ack bound: flips the clean trace into an ack-bound violation. *)
  let dual = Lazy.force line2 in
  check_parity "late ack" ~fack:1. dual
    (entries_to_trace
       [
         (0., Dsim.Trace.Bcast { node = 0; msg = 1; instance = 1 });
         (0.5, Dsim.Trace.Rcv { node = 1; msg = 1; instance = 1 });
         (5., Dsim.Trace.Ack { node = 0; msg = 1; instance = 1 });
       ])

let test_monitor_parity_golden () =
  match Dsim.Trace_io.read_file ~path:"golden/two_line_d5_seed0.jsonl" with
  | Error e -> Alcotest.fail e
  | Ok entries ->
      let tr = Dsim.Trace.create () in
      List.iter
        (fun { Dsim.Trace.time; event } -> Dsim.Trace.record tr ~time event)
        entries;
      let dual = Graphs.Dual.two_line ~d:5 in
      check_parity "golden trace" ~fack:8. ~fprog:1. dual tr;
      let mon = Obs.Monitor.create ~dual ~fack:8. ~fprog:1. () in
      Dsim.Trace.iter tr (Obs.Monitor.on_entry mon);
      Alcotest.(check int) "golden trace is streaming-clean" 0
        (List.length (Obs.Monitor.finish mon))

let test_monitor_callback_fires_at_detection () =
  let dual = Lazy.force line2 in
  let hits = ref [] in
  let mon =
    Obs.Monitor.create ~dual ~fack:10. ~fprog:2.
      ~on_violation:(fun entry v -> hits := (entry, v) :: !hits)
      ()
  in
  Dsim.Trace.iter
    (entries_to_trace
       [
         (0., Dsim.Trace.Bcast { node = 0; msg = 1; instance = 1 });
         (0.5, Dsim.Trace.Rcv { node = 1; msg = 1; instance = 1 });
         (0.7, Dsim.Trace.Rcv { node = 1; msg = 1; instance = 1 });
         (1., Dsim.Trace.Ack { node = 0; msg = 1; instance = 1 });
       ])
    (Obs.Monitor.on_entry mon);
  ignore (Obs.Monitor.finish mon);
  match List.rev !hits with
  | [ (Some entry, v) ] ->
      Alcotest.(check string) "rule" "receive-correctness"
        v.Amac.Compliance.rule;
      Alcotest.(check (float 0.)) "fires on the offending entry" 0.7
        entry.Dsim.Trace.time
  | hs -> Alcotest.failf "expected 1 callback with entry, got %d" (List.length hs)

(* --- trace ring buffer --------------------------------------------------- *)

let test_trace_ring () =
  let tr = Dsim.Trace.create ~capacity:3 () in
  for i = 0 to 4 do
    Dsim.Trace.record tr
      ~time:(float_of_int i)
      (Dsim.Trace.Arrive { node = i; msg = i })
  done;
  Alcotest.(check int) "retention bounded by capacity" 3 (Dsim.Trace.length tr);
  Alcotest.(check int) "recorded counts evicted entries" 5
    (Dsim.Trace.recorded tr);
  Alcotest.(check (list int)) "keeps the most recent, oldest first" [ 2; 3; 4 ]
    (List.map
       (fun e -> int_of_float e.Dsim.Trace.time)
       (Dsim.Trace.entries tr));
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Trace.create: capacity must be >= 1") (fun () ->
      ignore (Dsim.Trace.create ~capacity:0 ()))

let test_trace_subscribers_without_retention () =
  let tr = Dsim.Trace.create ~enabled:false () in
  let seen = ref 0 in
  Dsim.Trace.subscribe tr (fun _ -> incr seen);
  Dsim.Trace.record tr ~time:0. (Dsim.Trace.Arrive { node = 0; msg = 0 });
  Dsim.Trace.record tr ~time:1. (Dsim.Trace.Arrive { node = 1; msg = 1 });
  Alcotest.(check int) "disabled trace retains nothing" 0 (Dsim.Trace.length tr);
  Alcotest.(check int) "subscribers still see every record" 2 !seen

(* --- engine profiling accessors ------------------------------------------ *)

let test_sim_profiling () =
  let sim = Dsim.Sim.create () in
  ignore (Dsim.Sim.schedule_at ~cat:"a" sim ~time:1. (fun () -> ()));
  ignore (Dsim.Sim.schedule_at ~cat:"a" sim ~time:2. (fun () -> ()));
  let h = Dsim.Sim.schedule_at ~cat:"b" sim ~time:3. (fun () -> ()) in
  ignore (Dsim.Sim.schedule_at sim ~time:4. (fun () -> ()));
  Alcotest.(check int) "high water sees all four" 4
    (Dsim.Sim.heap_high_water sim);
  Dsim.Sim.cancel sim h;
  Alcotest.(check int) "one cancellation" 1 (Dsim.Sim.cancelled_events sim);
  ignore (Dsim.Sim.run sim);
  Alcotest.(check int) "executed excludes the cancelled event" 3
    (Dsim.Sim.executed_events sim);
  Alcotest.(check int) "pushes" 4 (Dsim.Sim.heap_pushes sim);
  Alcotest.(check (list (pair string Alcotest.int)))
    "per-category event counts, sorted"
    [ ("a", 2) ]
    (List.filter_map
       (fun (name, events, _) -> if name = "a" then Some (name, events) else None)
       (Dsim.Sim.category_stats sim))

(* --- end-to-end export: schema, determinism, estimate consistency -------- *)

let observed_run ~seed =
  let dual = Graphs.Dual.of_equal (Graphs.Gen.line 5) in
  let obs =
    Obs.Observer.create ~n:5 ~dual ~fack:8. ~fprog:1.
      ~meta:[ ("seed", Dsim.Json.Number (float_of_int seed)) ]
      ()
  in
  let res =
    Obs.Run.bmmb ~dual ~fack:8. ~fprog:1.
      ~policy:(Amac.Schedulers.eager ())
      ~assignment:[ (0, 0); (4, 1) ]
      ~seed ~check_compliance:true ~obs ()
  in
  (obs, res, dual)

let test_jsonl_schema_roundtrip () =
  let obs, res, _ = observed_run ~seed:3 in
  let lines = Obs.Observer.jsonl obs in
  Alcotest.(check bool) "run completed" true res.Mmb.Runner.complete;
  let kinds =
    List.map
      (fun line ->
        match Dsim.Json.parse line with
        | Error e -> Alcotest.failf "unparseable metrics line %S: %s" line e
        | Ok j ->
            Alcotest.(check string)
              "round-trips through Dsim.Json byte-for-byte" line
              (Dsim.Json.to_string j);
            Result.get_ok (Dsim.Json.member_str j "kind" ~default:"?"))
      lines
  in
  Alcotest.(check string) "meta line leads" "meta" (List.hd kinds);
  Alcotest.(check string) "compliance verdict closes" "compliance"
    (List.nth kinds (List.length kinds - 1));
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "known kind %S" k)
        true
        (List.mem k [ "meta"; "counter"; "gauge"; "histogram"; "span"; "compliance" ]))
    kinds;
  Alcotest.(check int) "one span line per message" 2
    (List.length (List.filter (( = ) "span") kinds));
  (* Verdict agrees with the run and the engine gauge with the result. *)
  let verdict = Result.get_ok (Dsim.Json.parse (List.nth lines (List.length lines - 1))) in
  Alcotest.(check bool) "checked" true
    (Result.get_ok
       (Dsim.Json.to_bool (Result.get_ok (Dsim.Json.member verdict "checked"))));
  Alcotest.(check bool) "ok" true
    (Result.get_ok
       (Dsim.Json.to_bool (Result.get_ok (Dsim.Json.member verdict "ok"))));
  let executed =
    List.find_map
      (fun line ->
        let j = Result.get_ok (Dsim.Json.parse line) in
        if Result.get_ok (Dsim.Json.member_str j "name" ~default:"") = "engine.executed"
        then Some (Result.get_ok (Dsim.Json.member_int j "value" ~default:(-1)))
        else None)
      lines
  in
  Alcotest.(check (option Alcotest.int)) "engine.executed matches the result"
    (Some res.Mmb.Runner.events_executed) executed;
  Alcotest.(check bool) "the run executed events" true
    (res.Mmb.Runner.events_executed > 0)

let test_jsonl_deterministic_across_runs () =
  let obs1, _, _ = observed_run ~seed:3 in
  let obs2, _, _ = observed_run ~seed:3 in
  Alcotest.(check (list string)) "same seed, byte-identical export"
    (Obs.Observer.jsonl obs1) (Obs.Observer.jsonl obs2);
  let obs3, _, _ = observed_run ~seed:4 in
  Alcotest.(check bool) "different seed differs" true
    (Obs.Observer.jsonl obs1 <> Obs.Observer.jsonl obs3)

let test_estimate_consistency () =
  let obs, res, dual = observed_run ~seed:5 in
  let tr =
    match res.Mmb.Runner.trace with
    | Some tr -> tr
    | None -> Alcotest.fail "expected a retained trace"
  in
  let est = Amac.Estimate.estimate ~dual tr in
  let m = Obs.Observer.metrics obs in
  Alcotest.(check (float 0.)) "hist max of mac.ack_latency is est_fack"
    est.Amac.Estimate.est_fack
    (M.hist_max (M.histogram m "mac.ack_latency"));
  (* The largest observed starvation gap is the empirical Fprog that the
     binary search recovers (up to its search tolerance). *)
  Alcotest.(check (float 1e-3)) "max progress gap is est_fprog"
    est.Amac.Estimate.est_fprog
    (M.hist_max (M.histogram m "mac.progress_gap"))

let test_fmmb_spans () =
  let dual = Graphs.Dual.of_equal (Graphs.Gen.line 4) in
  let obs = Obs.Observer.create ~n:4 () in
  let res =
    Obs.Run.fmmb ~dual ~fprog:2. ~c:2.
      ~policy:(Amac.Enhanced_mac.minimal_random ())
      ~assignment:[ (0, 0); (3, 1) ]
      ~seed:1 ~obs ()
  in
  Alcotest.(check bool) "complete" true res.Mmb.Runner.fmmb.Mmb.Fmmb.complete;
  Alcotest.(check int) "spans saw both messages" 2
    (Obs.Spans.messages_seen (Obs.Observer.spans obs));
  Alcotest.(check int) "both messages completed" 2
    (Obs.Spans.messages_complete (Obs.Observer.spans obs));
  match Obs.Observer.monitor obs with
  | None -> ()
  | Some _ -> Alcotest.fail "FMMB observer must not carry a monitor"

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "metric registry" `Quick test_registry;
        Alcotest.test_case "volatile metrics excluded by default" `Quick
          test_volatile_excluded;
        Alcotest.test_case "histogram bucket boundaries" `Quick
          test_hist_bucket_boundaries;
        Alcotest.test_case "histogram zeros and exact stats" `Quick
          test_hist_zeros_and_stats;
        Alcotest.test_case "histogram quantiles" `Quick test_hist_quantiles;
        Alcotest.test_case "span lifecycle, out-of-order events" `Quick
          test_span_lifecycle;
        Alcotest.test_case "span orphans and aborted instances" `Quick
          test_span_orphans_and_aborts;
        Alcotest.test_case "streaming parity on crafted violations" `Quick
          test_monitor_parity_crafted;
        Alcotest.test_case "streaming parity on the golden trace" `Quick
          test_monitor_parity_golden;
        Alcotest.test_case "violation callback at detection time" `Quick
          test_monitor_callback_fires_at_detection;
        Alcotest.test_case "trace ring buffer" `Quick test_trace_ring;
        Alcotest.test_case "subscribers on a disabled trace" `Quick
          test_trace_subscribers_without_retention;
        Alcotest.test_case "engine profiling accessors" `Quick
          test_sim_profiling;
        Alcotest.test_case "metrics JSONL schema + Json round-trip" `Quick
          test_jsonl_schema_roundtrip;
        Alcotest.test_case "metrics JSONL determinism across runs" `Quick
          test_jsonl_deterministic_across_runs;
        Alcotest.test_case "empirical Fack/Fprog match Estimate" `Quick
          test_estimate_consistency;
        Alcotest.test_case "FMMB span-only observer" `Quick test_fmmb_spans;
      ] );
  ]
