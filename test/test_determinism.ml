(* Determinism regression: the same scenario run twice from the same seed
   must emit bit-identical traces.

   This is NOT trivially true: each run allocates fresh hash tables, and
   when hashing is randomized those tables hash (hence iterate) differently
   run-to-run, so any [Hashtbl.iter]/[Hashtbl.fold] on a behavior-relevant
   path diverges the two traces.  That is exactly the hazard class mmb_lint
   rule D1 bans and Dsim.Tbl exists to fix.

   CI note: OCaml only randomizes Hashtbl hashing when asked.  Run

     OCAMLRUNPARAM=R dune runtest

   at least once after touching iteration code — with the R flag every
   Hashtbl.create draws a fresh random hash seed, so a reintroduced
   order-dependent traversal makes these two tests fail instead of
   silently passing under the deterministic default hashing. *)

let grey_dual ~seed ~n =
  let rng = Dsim.Rng.create ~seed in
  Graphs.Dual.grey_zone_connected rng ~n
    ~width:(sqrt (float_of_int n /. 3.))
    ~height:(sqrt (float_of_int n /. 3.))
    ~c:2. ~p:0.4 ~max_tries:500

(* One BMMB run over the standard MAC with a randomized-compliant
   scheduler: exercises Standard_mac's instance/contender tables. *)
let bmmb_trace () =
  let dual = grey_dual ~seed:11 ~n:24 in
  let assignment = [ (0, 0); (5, 1); (11, 2) ] in
  let res =
    Mmb.Runner.run_bmmb ~dual ~fack:8. ~fprog:1.
      ~policy:(Amac.Schedulers.random_compliant ())
      ~assignment ~seed:42 ~check_compliance:true ()
  in
  match res.Mmb.Runner.trace with
  | Some tr -> Dsim.Trace_io.to_jsonl tr
  | None -> Alcotest.fail "bmmb run produced no trace"

(* One FMMB run (MIS + gather + spread): exercises the custody/sent/
   pending tables in the fmmb_* modules. *)
let fmmb_trace () =
  let n = 24 in
  let dual = grey_dual ~seed:7 ~n in
  let assignment = [ (1, 0); (8, 1); (15, 2) ] in
  let rng = Dsim.Rng.create ~seed:42 in
  let trace = Dsim.Trace.create () in
  let tracker = Mmb.Problem.tracker ~dual assignment in
  let params = Mmb.Fmmb.default_params ~n ~k:(List.length assignment) ~c:2. in
  ignore
    (Mmb.Fmmb.run ~dual ~fprog:1. ~rng
       ~policy:(Amac.Enhanced_mac.minimal_random ())
       ~params ~assignment ~tracker ~trace ());
  Dsim.Trace_io.to_jsonl trace

let check_replay name run =
  let a = run () in
  let b = run () in
  if String.equal a b then ()
  else begin
    let la = String.split_on_char '\n' a
    and lb = String.split_on_char '\n' b in
    let rec first_diff i = function
      | x :: xs, y :: ys ->
          if String.equal x y then first_diff (i + 1) (xs, ys) else Some (i, x, y)
      | [], y :: _ -> Some (i, "<eof>", y)
      | x :: _, [] -> Some (i, x, "<eof>")
      | [], [] -> None
    in
    match first_diff 1 (la, lb) with
    | Some (line, x, y) ->
        Alcotest.failf
          "%s: same seed, diverging traces at line %d:\n  run 1: %s\n  run 2: %s"
          name line x y
    | None -> Alcotest.failf "%s: traces differ" name
  end

let test_bmmb_replay () = check_replay "bmmb" bmmb_trace
let test_fmmb_replay () = check_replay "fmmb" fmmb_trace

let suite =
  [
    ( "determinism",
      [
        Alcotest.test_case "BMMB trace replays bit-for-bit" `Quick
          test_bmmb_replay;
        Alcotest.test_case "FMMB trace replays bit-for-bit" `Quick
          test_fmmb_replay;
      ] );
  ]
