(* The JSON parser and the config-driven scenario runner. *)

(* --- Json ------------------------------------------------------------------ *)

let test_json_values () =
  let check_parse input expected =
    match Dsim.Json.parse input with
    | Ok v -> Alcotest.(check bool) input true (v = expected)
    | Error e -> Alcotest.failf "%s: %s" input e
  in
  check_parse "null" Dsim.Json.Null;
  check_parse "true" (Dsim.Json.Bool true);
  check_parse "-12.5e1" (Dsim.Json.Number (-125.));
  check_parse {|"a\nb\"c"|} (Dsim.Json.String "a\nb\"c");
  check_parse {|"A"|} (Dsim.Json.String "A");
  check_parse "[1, 2, 3]"
    (Dsim.Json.List
       [ Dsim.Json.Number 1.; Dsim.Json.Number 2.; Dsim.Json.Number 3. ]);
  check_parse {| {"a": [true, null], "b": {"c": 0}} |}
    (Dsim.Json.Obj
       [
         ("a", Dsim.Json.List [ Dsim.Json.Bool true; Dsim.Json.Null ]);
         ("b", Dsim.Json.Obj [ ("c", Dsim.Json.Number 0.) ]);
       ]);
  check_parse "[]" (Dsim.Json.List []);
  check_parse "{}" (Dsim.Json.Obj [])

let test_json_rejects () =
  List.iter
    (fun input ->
      match Dsim.Json.parse input with
      | Ok _ -> Alcotest.failf "accepted %S" input
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_json_accessors () =
  match Dsim.Json.parse {|{"n": 5, "name": "x", "flag": true}|} with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check (result int string)) "int" (Ok 5)
        (Result.bind (Dsim.Json.member v "n") Dsim.Json.to_int);
      Alcotest.(check (result string string)) "default hit" (Ok "x")
        (Dsim.Json.member_str v "name" ~default:"y");
      Alcotest.(check (result string string)) "default miss" (Ok "y")
        (Dsim.Json.member_str v "missing" ~default:"y");
      Alcotest.(check bool) "missing member errors" true
        (Result.is_error (Dsim.Json.member v "nope"))

let prop_json_roundtrip =
  let rec gen_value depth =
    QCheck.Gen.(
      if depth = 0 then
        oneof
          [
            return Dsim.Json.Null;
            map (fun b -> Dsim.Json.Bool b) bool;
            map (fun i -> Dsim.Json.Number (float_of_int i)) small_int;
            map (fun s -> Dsim.Json.String s) (string_size (int_bound 8));
          ]
      else
        frequency
          [
            (3, gen_value 0);
            ( 1,
              map
                (fun l -> Dsim.Json.List l)
                (list_size (int_bound 4) (gen_value (depth - 1))) );
            ( 1,
              map
                (fun kvs ->
                  (* object keys must be distinct for round-tripping *)
                  let _, uniq =
                    List.fold_left
                      (fun (seen, acc) (k, v) ->
                        if List.mem k seen then (seen, acc)
                        else (k :: seen, (k, v) :: acc))
                      ([], []) kvs
                  in
                  Dsim.Json.Obj (List.rev uniq))
                (list_size (int_bound 4)
                   (pair (string_size (int_bound 6)) (gen_value (depth - 1))))
            );
          ])
  in
  QCheck.Test.make ~name:"JSON print/parse round-trips" ~count:300
    (QCheck.make (gen_value 3))
    (fun v ->
      match Dsim.Json.parse (Dsim.Json.to_string v) with
      | Ok v' -> v = v'
      | Error _ -> false)

(* --- Scenario ---------------------------------------------------------------- *)

let test_scenario_defaults () =
  match Mmb.Scenario.of_string "{}" with
  | Error e -> Alcotest.fail e
  | Ok spec ->
      Alcotest.(check string) "default topology" "line"
        spec.Mmb.Scenario.topology;
      Alcotest.(check int) "default n" 30 spec.Mmb.Scenario.n;
      Alcotest.(check int) "default repeat" 1 spec.Mmb.Scenario.repeat

let test_scenario_rejects_bad_config () =
  List.iter
    (fun cfg ->
      match Mmb.Scenario.of_string cfg with
      | Ok _ -> Alcotest.failf "accepted %s" cfg
      | Error _ -> ())
    [
      {|{"protocol": "quantum"}|};
      {|{"n": 0}|};
      {|{"fprog": 5, "fack": 1}|};
      {|{"arrivals": "sometimes"}|};
      {|{"repeat": 0}|};
      {|not json|};
    ]

let test_scenario_bmmb_batch () =
  let spec =
    Result.get_ok
      (Mmb.Scenario.of_string
         {|{"name":"t","protocol":"bmmb","topology":"ring","n":12,"k":3,
            "scheduler":"adversarial","check":true,"repeat":2,"seed":5}|})
  in
  match Mmb.Scenario.execute spec with
  | Error e -> Alcotest.fail e
  | Ok runs ->
      Alcotest.(check int) "two runs" 2 (List.length runs);
      List.iter
        (fun r ->
          Alcotest.(check bool) "complete" true r.Mmb.Scenario.complete;
          Alcotest.(check int) "compliant" 0 r.Mmb.Scenario.violations;
          match r.Mmb.Scenario.bound with
          | Some b ->
              Alcotest.(check bool) "within bound" true
                (r.Mmb.Scenario.time <= b +. 1e-6)
          | None -> Alcotest.fail "bmmb batch should report a bound")
        runs

let test_scenario_online () =
  let spec =
    Result.get_ok
      (Mmb.Scenario.of_string
         {|{"protocol":"bmmb","arrivals":"poisson","rate":0.01,"n":10,"k":4}|})
  in
  match Mmb.Scenario.execute spec with
  | Error e -> Alcotest.fail e
  | Ok [ r ] ->
      Alcotest.(check bool) "complete" true r.Mmb.Scenario.complete;
      Alcotest.(check bool) "reports latency" true
        (r.Mmb.Scenario.mean_latency <> None)
  | Ok _ -> Alcotest.fail "expected one run"

let test_scenario_fmmb_rejects_online () =
  let spec =
    Result.get_ok
      (Mmb.Scenario.of_string {|{"protocol":"fmmb","arrivals":"poisson"}|})
  in
  Alcotest.(check bool) "fmmb+poisson rejected" true
    (Result.is_error (Mmb.Scenario.execute spec))

let test_scenario_fmmb_online () =
  let spec =
    Result.get_ok
      (Mmb.Scenario.of_string
         {|{"protocol":"fmmb-online","gprime":"greyzone","n":25,"k":3,
            "arrivals":"staggered","gap":500}|})
  in
  match Mmb.Scenario.execute spec with
  | Error e -> Alcotest.fail e
  | Ok [ r ] -> Alcotest.(check bool) "complete" true r.Mmb.Scenario.complete
  | Ok _ -> Alcotest.fail "expected one run"

let test_scenario_report_and_json () =
  let spec =
    Result.get_ok
      (Mmb.Scenario.of_string {|{"name":"demo","n":8,"k":2,"repeat":2}|})
  in
  let runs = Result.get_ok (Mmb.Scenario.execute spec) in
  let rep = Mmb.Scenario.report spec runs in
  Alcotest.(check bool) "report names scenario" true
    (String.length rep > 0
    &&
    let rec contains i =
      i + 4 <= String.length rep
      && (String.sub rep i 4 = "demo" || contains (i + 1))
    in
    contains 0);
  match Dsim.Json.parse (Dsim.Json.to_string (Mmb.Scenario.result_json spec runs)) with
  | Ok (Dsim.Json.Obj _) -> ()
  | _ -> Alcotest.fail "result json should be a parsable object"

let suite =
  [
    ( "dsim.json",
      [
        Alcotest.test_case "parses values" `Quick test_json_values;
        Alcotest.test_case "rejects malformed input" `Quick test_json_rejects;
        Alcotest.test_case "accessors" `Quick test_json_accessors;
        QCheck_alcotest.to_alcotest prop_json_roundtrip;
      ] );
    ( "mmb.scenario",
      [
        Alcotest.test_case "defaults" `Quick test_scenario_defaults;
        Alcotest.test_case "rejects bad configs" `Quick
          test_scenario_rejects_bad_config;
        Alcotest.test_case "bmmb batch" `Quick test_scenario_bmmb_batch;
        Alcotest.test_case "bmmb online" `Quick test_scenario_online;
        Alcotest.test_case "fmmb rejects online arrivals" `Quick
          test_scenario_fmmb_rejects_online;
        Alcotest.test_case "fmmb-online staggered" `Slow
          test_scenario_fmmb_online;
        Alcotest.test_case "report and json output" `Quick
          test_scenario_report_and_json;
      ] );
  ]

(* --- sweeps ------------------------------------------------------------------ *)

let test_sweep_expansion () =
  match
    Mmb.Scenario.expand_string
      {|{"name":"s","n":10,"sweep":{"param":"k","values":[1,2,4]}}|}
  with
  | Error e -> Alcotest.fail e
  | Ok specs ->
      Alcotest.(check int) "three specs" 3 (List.length specs);
      Alcotest.(check (list int)) "k values applied" [ 1; 2; 4 ]
        (List.map (fun s -> s.Mmb.Scenario.k) specs);
      List.iter
        (fun s ->
          Alcotest.(check int) "other fields preserved" 10 s.Mmb.Scenario.n)
        specs

let test_sweep_float_param () =
  match
    Mmb.Scenario.expand_string
      {|{"sweep":{"param":"fack","values":[5, 40]}}|}
  with
  | Error e -> Alcotest.fail e
  | Ok specs ->
      Alcotest.(check (list (float 1e-9))) "fack values" [ 5.; 40. ]
        (List.map (fun s -> s.Mmb.Scenario.fack) specs)

let test_sweep_errors () =
  List.iter
    (fun cfg ->
      match Mmb.Scenario.expand_string cfg with
      | Ok _ -> Alcotest.failf "accepted %s" cfg
      | Error _ -> ())
    [
      {|{"sweep":{}}|};
      {|{"sweep":{"param":"k","values":[]}}|};
      {|{"sweep":{"param":"k","values":["a"]}}|};
      {|{"sweep":{"param":"k","values":[0],"x":1}, "n": 0}|};
    ]

(* --- Loader hardening: typos fail loudly, with the field named ----------- *)

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_unknown_field_rejected () =
  (match Mmb.Scenario.of_string {|{"topolgy": "ring"}|} with
  | Ok _ -> Alcotest.fail "typo'd field accepted (silently defaulted)"
  | Error e ->
      Alcotest.(check bool) "error names the offending field" true
        (contains ~sub:"topolgy" e);
      Alcotest.(check bool) "error lists the vocabulary" true
        (contains ~sub:"topology" e));
  (match Mmb.Scenario.expand_string {|{"seeed": 3}|} with
  | Ok _ -> Alcotest.fail "expand must validate too"
  | Error e ->
      Alcotest.(check bool) "expand error names the field" true
        (contains ~sub:"seeed" e));
  match Mmb.Scenario.of_string {|{"sweep":{"param":"k","values":[1],"step":2}}|} with
  | Ok _ -> Alcotest.fail "unknown sweep field accepted"
  | Error e ->
      Alcotest.(check bool) "sweep error names the field" true
        (contains ~sub:"step" e)

let test_unknown_sweep_param_rejected () =
  match
    Mmb.Scenario.expand_string {|{"sweep":{"param":"kk","values":[1,2]}}|}
  with
  | Ok _ -> Alcotest.fail "sweep over a nonexistent parameter accepted"
  | Error e ->
      Alcotest.(check bool) "error names the bogus parameter" true
        (contains ~sub:"kk" e)

let test_load_file_prefixes_errors () =
  let path = Filename.temp_file "scenario" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc {|{"protokoll": "bmmb"}|};
      close_out oc;
      (match Mmb.Scenario.load_file path with
      | Ok _ -> Alcotest.fail "bad file accepted"
      | Error e ->
          Alcotest.(check bool) "error carries the file name" true
            (contains ~sub:path e);
          Alcotest.(check bool) "and the field" true
            (contains ~sub:"protokoll" e));
      match Mmb.Scenario.load_file (path ^ ".missing") with
      | Ok _ -> Alcotest.fail "missing file accepted"
      | Error _ -> ())

let test_load_file_expands () =
  let path = Filename.temp_file "scenario" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc {|{"n": 9, "sweep":{"param":"k","values":[1,2]}}|};
      close_out oc;
      match Mmb.Scenario.load_file path with
      | Error e -> Alcotest.fail e
      | Ok specs ->
          Alcotest.(check (list int)) "sweep expanded" [ 1; 2 ]
            (List.map (fun s -> s.Mmb.Scenario.k) specs))

let test_spec_to_json_roundtrip () =
  let text =
    {|{"name":"rt","protocol":"bmmb","arrivals":"poisson","rate":0.5,"n":9}|}
  in
  let spec = Result.get_ok (Mmb.Scenario.of_string text) in
  let json = Mmb.Scenario.spec_to_json spec in
  (* The resolved spec is itself a valid scenario, and fully resolved:
     re-parsing it yields the same spec (the campaign's keying invariant). *)
  let spec' = Result.get_ok (Mmb.Scenario.of_json json) in
  Alcotest.(check bool) "spec_to_json round-trips through of_json" true
    (spec = spec');
  Alcotest.(check string) "and re-serializes identically"
    (Dsim.Json.to_string json)
    (Dsim.Json.to_string (Mmb.Scenario.spec_to_json spec'))

let test_no_sweep_is_singleton () =
  match Mmb.Scenario.expand_string {|{"n": 7}|} with
  | Ok [ spec ] -> Alcotest.(check int) "n" 7 spec.Mmb.Scenario.n
  | Ok _ -> Alcotest.fail "expected singleton"
  | Error e -> Alcotest.fail e

let sweep_suite =
  ( "mmb.scenario-sweep",
    [
      Alcotest.test_case "expansion" `Quick test_sweep_expansion;
      Alcotest.test_case "float parameters" `Quick test_sweep_float_param;
      Alcotest.test_case "rejects malformed sweeps" `Quick test_sweep_errors;
      Alcotest.test_case "no sweep = singleton" `Quick
        test_no_sweep_is_singleton;
      Alcotest.test_case "unknown fields rejected with the field named"
        `Quick test_unknown_field_rejected;
      Alcotest.test_case "unknown sweep param rejected" `Quick
        test_unknown_sweep_param_rejected;
      Alcotest.test_case "load_file prefixes errors with the file" `Quick
        test_load_file_prefixes_errors;
      Alcotest.test_case "load_file expands sweeps" `Quick
        test_load_file_expands;
      Alcotest.test_case "spec_to_json round-trips" `Quick
        test_spec_to_json_roundtrip;
    ] )

let suite = suite @ [ sweep_suite ]
