(* lib/dyn: epoch schedules, versioned duals, and the dynamic run path.

   The two load-bearing contracts live here: rebuild equivalence (the
   incremental Dual.with_g' refresh must be indistinguishable from a
   fresh construction, on randomized churn) and static-as-degenerate
   (a static graph expressed as a single-epoch schedule must reproduce
   the committed golden trace byte-for-byte). *)

let sorted_pool dual =
  let cmp (a1, b1) (a2, b2) =
    let c = Int.compare a1 a2 in
    if c <> 0 then c else Int.compare b1 b2
  in
  List.sort cmp (Graphs.Dual.unreliable_only_edges dual)

let line_with_extras ~n ~extra ~seed =
  let rng = Dsim.Rng.create ~seed in
  Graphs.Dual.arbitrary_random rng ~g:(Graphs.Gen.line n) ~extra

(* --- Schedule ------------------------------------------------------------ *)

let test_epoch_of_time () =
  let base = line_with_extras ~n:8 ~extra:4 ~seed:1 in
  let s = Dyn.Schedule.static base in
  Alcotest.(check int) "static is one epoch" 0
    (Dyn.Schedule.epoch_of_time s 1e9);
  let c = Dyn.Schedule.churn ~base ~epoch_len:10. ~rate:0.5 ~seed:1 in
  List.iter
    (fun (time, e) ->
      Alcotest.(check int)
        (Printf.sprintf "epoch at t=%g" time)
        e
        (Dyn.Schedule.epoch_of_time c time))
    [ (-3., 0); (0., 0); (9.99, 0); (10., 1); (25., 2) ]

let test_flap_alternation () =
  let base = line_with_extras ~n:8 ~extra:4 ~seed:2 in
  let s = Dyn.Schedule.flap ~base ~epoch_len:1. ~period:2 in
  let pool = Array.length (Dyn.Schedule.extras_at s ~epoch:0) in
  Alcotest.(check bool) "pool nonempty" true (pool > 0);
  List.iter
    (fun (e, up) ->
      Alcotest.(check int)
        (Printf.sprintf "epoch %d" e)
        (if up then pool else 0)
        (Array.length (Dyn.Schedule.extras_at s ~epoch:e)))
    [ (0, true); (1, true); (2, false); (3, false); (4, true) ]

let test_churn_pure_and_deterministic () =
  let base = line_with_extras ~n:12 ~extra:8 ~seed:3 in
  let make () = Dyn.Schedule.churn ~base ~epoch_len:5. ~rate:0.4 ~seed:7 in
  let a = make () and b = make () in
  let epochs = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  (* Query b in reverse: the edge set at epoch e is a pure function of
     (params, e), so the query order must not matter. *)
  let via_a = List.map (fun e -> Dyn.Schedule.extras_at a ~epoch:e) epochs in
  let via_b =
    List.rev
      (List.map
         (fun e -> Dyn.Schedule.extras_at b ~epoch:e)
         (List.rev epochs))
  in
  List.iter2
    (fun ea eb ->
      Alcotest.(check bool) "order-independent" true (ea = eb);
      let pool = sorted_pool base in
      Array.iter
        (fun edge ->
          Alcotest.(check bool) "subset of pool" true (List.mem edge pool))
        ea)
    via_a via_b;
  let full = Dyn.Schedule.churn ~base ~epoch_len:5. ~rate:0. ~seed:7 in
  let none = Dyn.Schedule.churn ~base ~epoch_len:5. ~rate:1. ~seed:7 in
  Alcotest.(check int) "rate 0 keeps the pool"
    (Dyn.Schedule.pool_size full)
    (Array.length (Dyn.Schedule.extras_at full ~epoch:3));
  Alcotest.(check int) "rate 1 strips the pool" 0
    (Array.length (Dyn.Schedule.extras_at none ~epoch:3))

let test_adversary_frontier () =
  (* G = line 0-1-2-3; pool = {(0,2), (1,3)}.  A message known only at
     node 0 makes (0,2) frontier-crossing; (1,3) is not. *)
  let g = Graphs.Gen.line 4 in
  let g' = Graphs.Graph.of_edges ~n:4 (Graphs.Graph.edges g @ [ (0, 2); (1, 3) ]) in
  let base = Graphs.Dual.create ~g ~g' () in
  let blind = Dyn.Dual.of_schedule (Dyn.Schedule.adversary ~base ~epoch_len:5. ~seed:0) in
  Alcotest.(check int) "blind adversary keeps the pool" 2
    (Array.length
       (Dyn.Schedule.extras_at (Dyn.Dual.schedule blind) ~epoch:0));
  let informed =
    Dyn.Dual.of_schedule (Dyn.Schedule.adversary ~base ~epoch_len:5. ~seed:0)
  in
  Dyn.Dual.note_bcast informed ~node:0 ~msg:0;
  Alcotest.(check bool) "only the crossing edge withdrawn" true
    (Dyn.Schedule.extras_at (Dyn.Dual.schedule informed) ~epoch:1
    = [| (1, 3) |]);
  (* The epoch-1 choice was memoized at first entry: learning more does
     not retroactively change it. *)
  Dyn.Dual.note_delivery informed ~node:3 ~msg:0;
  Alcotest.(check bool) "memoized per epoch" true
    (Dyn.Schedule.extras_at (Dyn.Dual.schedule informed) ~epoch:1
    = [| (1, 3) |])

(* --- Rebuild equivalence (satellite: Graphs.Dual.with_g') ---------------- *)

let test_rebuild_equivalence () =
  let base = line_with_extras ~n:20 ~extra:15 ~seed:5 in
  let g = Graphs.Dual.reliable base in
  let sched = Dyn.Schedule.churn ~base ~epoch_len:1. ~rate:0.5 ~seed:11 in
  let incremental = ref base in
  for epoch = 0 to 40 do
    let extras = Array.to_list (Dyn.Schedule.extras_at sched ~epoch) in
    let g'new = Graphs.Graph.of_edges ~n:(Graphs.Graph.n g) (Graphs.Graph.edges g @ extras) in
    (* Dirty set: every endpoint whose G'-adjacency could have changed
       (endpoints of the symmetric difference of the extras sets). *)
    let dirty = Hashtbl.create 16 in
    let mark (u, v) =
      Hashtbl.replace dirty u ();
      Hashtbl.replace dirty v ()
    in
    let prev = sorted_pool !incremental in
    List.iter (fun e -> if not (List.mem e extras) then mark e) prev;
    List.iter (fun e -> if not (List.mem e prev) then mark e) extras;
    let dirty = Array.of_seq (Hashtbl.to_seq_keys dirty) in
    incremental := Graphs.Dual.with_g' !incremental ~g':g'new ~dirty;
    let fresh = Graphs.Dual.create ~g ~g':g'new () in
    for u = 0 to Graphs.Graph.n g - 1 do
      Alcotest.(check (array int))
        (Printf.sprintf "epoch %d node %d g'-only row" epoch u)
        (Graphs.Dual.g'_only_neighbors fresh u)
        (Graphs.Dual.g'_only_neighbors !incremental u)
    done;
    Alcotest.(check bool)
      (Printf.sprintf "epoch %d unreliable edges" epoch)
      true
      (sorted_pool fresh = sorted_pool !incremental)
  done

let test_with_g'_shares_clean_rows () =
  (* Rows of nodes outside the dirty set must be shared physically, and
     reliable_bits must be reused (is_reliable is epoch-invariant). *)
  let g = Graphs.Gen.line 6 in
  let g' = Graphs.Graph.of_edges ~n:6 (Graphs.Graph.edges g @ [ (0, 2); (3, 5) ]) in
  let base = Graphs.Dual.create ~g ~g' () in
  let g'small = Graphs.Graph.of_edges ~n:6 (Graphs.Graph.edges g @ [ (3, 5) ]) in
  let refreshed = Graphs.Dual.with_g' base ~g':g'small ~dirty:[| 0; 2 |] in
  Alcotest.(check bool) "clean row shared" true
    (Graphs.Dual.g'_only_neighbors base 3
    == Graphs.Dual.g'_only_neighbors refreshed 3);
  Alcotest.(check (array int)) "dirty row rebuilt" [||]
    (Graphs.Dual.g'_only_neighbors refreshed 0);
  Alcotest.(check bool) "reliability epoch-invariant" true
    (Graphs.Dual.is_reliable refreshed 0 1 && not (Graphs.Dual.is_reliable refreshed 0 2))

let test_with_g'_validates () =
  let base = line_with_extras ~n:6 ~extra:3 ~seed:9 in
  let g'bad = Graphs.Gen.line 5 in
  Alcotest.check_raises "node-count mismatch"
    (Invalid_argument "Dual.with_g': node-count mismatch") (fun () ->
      ignore (Graphs.Dual.with_g' base ~g':g'bad ~dirty:[||]));
  Alcotest.check_raises "dirty out of range"
    (Invalid_argument "Dual.with_g': dirty node out of range") (fun () ->
      ignore
        (Graphs.Dual.with_g' base
           ~g':(Graphs.Dual.unreliable base)
           ~dirty:[| 6 |]))

(* --- Dyn.Dual stepping --------------------------------------------------- *)

let test_dual_refresh_path () =
  let base = line_with_extras ~n:10 ~extra:6 ~seed:13 in
  let d =
    Dyn.Dual.of_schedule (Dyn.Schedule.flap ~base ~epoch_len:1. ~period:1)
  in
  Alcotest.(check int) "starts at epoch 0" 0 (Dyn.Dual.epoch d);
  Alcotest.(check int) "epoch 0 equals the base: no refresh" 0
    (Dyn.Dual.refreshes d);
  ignore (Dyn.Dual.view d ~time:1.5);
  Alcotest.(check int) "stepped to epoch 1" 1 (Dyn.Dual.epoch d);
  Alcotest.(check int) "flap-down dirtied adjacency" 1 (Dyn.Dual.refreshes d);
  Alcotest.(check int) "extras withdrawn" 0
    (List.length (Graphs.Dual.unreliable_only_edges (Dyn.Dual.current d)));
  (* Queries inside or before the current window never move backwards. *)
  let before = Dyn.Dual.current d in
  Alcotest.(check bool) "no backwards step" true
    (Dyn.Dual.view d ~time:0.2 == before);
  Alcotest.check_raises "advance_to refuses to rewind"
    (Invalid_argument "Dyn.Dual.advance_to: epochs only advance")
    (fun () -> Dyn.Dual.advance_to d ~epoch:0);
  ignore (Dyn.Dual.view d ~time:2.5);
  Alcotest.(check int) "flap-up restores the pool" 6
    (List.length (Graphs.Dual.unreliable_only_edges (Dyn.Dual.current d)))

let test_static_is_pointer () =
  let base = line_with_extras ~n:10 ~extra:6 ~seed:17 in
  let d = Dyn.Dual.of_static base in
  Alcotest.(check bool) "static view is the base, physically" true
    (Dyn.Dual.view d ~time:123.456 == base);
  Alcotest.(check int) "no refreshes ever" 0 (Dyn.Dual.refreshes d)

(* --- Static-as-degenerate-dynamic byte identity -------------------------- *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden_byte_identity () =
  (* The committed golden BMMB trace, re-run with the static graph
     expressed as a single-epoch schedule: must be byte-identical. *)
  let dual = Graphs.Dual.two_line ~d:5 in
  let assignment =
    [ (Graphs.Dual.two_line_a ~d:5 1, 0); (Graphs.Dual.two_line_b ~d:5 1, 1) ]
  in
  let res =
    Mmb.Runner.run_bmmb ~dual ~fack:8. ~fprog:1.
      ~policy:(Mmb.Lower_bound.two_line_policy ~d:5)
      ~assignment ~seed:0 ~check_compliance:true
      ~dyn:(Dyn.Dual.of_static dual) ()
  in
  match res.Mmb.Runner.trace with
  | None -> Alcotest.fail "no trace"
  | Some tr ->
      Alcotest.(check bool) "byte-identical to the golden trace" true
        (String.equal
           (read_file "golden/two_line_d5_seed0.jsonl")
           (Dsim.Trace_io.to_jsonl tr))

let bmmb_trace ?dyn ~seed () =
  let dual = line_with_extras ~n:14 ~extra:8 ~seed:21 in
  let rng = Dsim.Rng.create ~seed in
  let assignment = Mmb.Problem.random rng ~n:14 ~k:4 in
  let res =
    Mmb.Runner.run_bmmb ~dual ~fack:20. ~fprog:1.
      ~policy:(Amac.Schedulers.adversarial ())
      ~assignment ~seed ~check_compliance:true ?dyn ()
  in
  match res.Mmb.Runner.trace with
  | Some tr -> (Dsim.Trace_io.to_jsonl tr, res)
  | None -> Alcotest.fail "no trace"

let test_paired_byte_identity () =
  (* Same property off the golden path, on a randomized instance. *)
  let dual = line_with_extras ~n:14 ~extra:8 ~seed:21 in
  let plain, _ = bmmb_trace ~seed:3 () in
  let wrapped, _ = bmmb_trace ~dyn:(Dyn.Dual.of_static dual) ~seed:3 () in
  Alcotest.(check bool) "static wrapper changes nothing" true
    (String.equal plain wrapped)

let test_fmmb_unperturbed () =
  (* FMMB takes no dynamic layer (scenario rejects the combination);
     its seeded path must be untouched by the dyn plumbing.  Two
     identical runs agree exactly. *)
  let rng = Dsim.Rng.create ~seed:4 in
  let dual =
    Graphs.Dual.grey_zone_connected rng ~n:24 ~width:3. ~height:3. ~c:2.
      ~p:0.4 ~max_tries:1000
  in
  let assignment =
    Mmb.Problem.singleton (Dsim.Rng.create ~seed:5) ~n:24 ~k:3
  in
  let run () =
    Mmb.Runner.run_fmmb ~dual ~fprog:1. ~c:2.
      ~policy:(Amac.Enhanced_mac.minimal_random ())
      ~assignment ~seed:6 ()
  in
  let a = run () and b = run () in
  Alcotest.(check int) "rounds agree" a.Mmb.Runner.fmmb.Mmb.Fmmb.total_rounds
    b.Mmb.Runner.fmmb.Mmb.Fmmb.total_rounds;
  Alcotest.(check (float 0.)) "times agree" a.Mmb.Runner.fmmb.Mmb.Fmmb.time
    b.Mmb.Runner.fmmb.Mmb.Fmmb.time

(* --- Churn runs: determinism and audit soundness ------------------------- *)

let churn_run ~seed =
  let dual = line_with_extras ~n:14 ~extra:8 ~seed:21 in
  let dyn =
    Dyn.Dual.of_schedule
      (Dyn.Schedule.churn ~base:dual ~epoch_len:8. ~rate:0.4 ~seed:33)
  in
  let rng = Dsim.Rng.create ~seed in
  let assignment = Mmb.Problem.random rng ~n:14 ~k:4 in
  let res =
    Mmb.Runner.run_bmmb ~dual ~fack:20. ~fprog:1.
      ~policy:(Amac.Schedulers.adversarial ())
      ~assignment ~seed ~check_compliance:true ~dyn ()
  in
  match res.Mmb.Runner.trace with
  | Some tr -> (Dsim.Trace_io.to_jsonl tr, res)
  | None -> Alcotest.fail "no trace"

let test_churn_determinism () =
  let a, ra = churn_run ~seed:3 in
  let b, rb = churn_run ~seed:3 in
  Alcotest.(check bool) "identical traces" true (String.equal a b);
  Alcotest.(check bool) "complete" true ra.Mmb.Runner.complete;
  Alcotest.(check int) "same event count" ra.Mmb.Runner.events_executed
    rb.Mmb.Runner.events_executed

let test_churn_audit_sound () =
  (* Every epoch's G' is a subset of the union, so the static post-hoc
     audit against the base dual must stay clean on a churned run. *)
  let _, res = churn_run ~seed:9 in
  Alcotest.(check int) "no violations vs the union dual" 0
    (List.length res.Mmb.Runner.compliance_violations);
  Alcotest.(check int) "no MMB spec violations" 0
    (List.length res.Mmb.Runner.spec_violations)

(* --- Monitor classification ---------------------------------------------- *)

let test_monitor_churned_classification () =
  (* G = line 0-1-2, union pool = {(0,2)}; rate-1 churn strips the pool,
     so epoch 0's G' is G alone.  A delivery 0→2 crosses a churned-away
     link: churned, not a violation.  A delivery 0→3-nowhere stays a
     violation. *)
  let g = Graphs.Gen.line 4 in
  let g' = Graphs.Graph.of_edges ~n:4 (Graphs.Graph.edges g @ [ (0, 2) ]) in
  let base = Graphs.Dual.create ~g ~g' () in
  let dyn =
    Dyn.Dual.of_schedule
      (Dyn.Schedule.churn ~base ~epoch_len:10. ~rate:1. ~seed:1)
  in
  let m = Obs.Monitor.create ~dual:base ~fack:10. ~fprog:5. ~dyn () in
  List.iter
    (fun (time, event) -> Obs.Monitor.on_entry m { Dsim.Trace.time; event })
    [
      (0., Dsim.Trace.Bcast { node = 0; msg = 1; instance = 1 });
      (0.5, Dsim.Trace.Rcv { node = 1; msg = 1; instance = 1 });
      (* Crosses the churned-away (0,2): in the union, not the pinned G'. *)
      (1., Dsim.Trace.Rcv { node = 2; msg = 1; instance = 1 });
      (* Not even a union-G' edge: a genuine violation. *)
      (1.5, Dsim.Trace.Rcv { node = 3; msg = 1; instance = 1 });
      (2., Dsim.Trace.Ack { node = 0; msg = 1; instance = 1 });
    ];
  let vs = Obs.Monitor.finish ~allow_open:true m in
  Alcotest.(check int) "one churn-explained anomaly" 1
    (Obs.Monitor.churned_count m);
  Alcotest.(check bool) "the out-of-union delivery is still flagged" true
    (List.exists (fun v -> v.Obs.Monitor.rule = "receive-correctness") vs)

(* --- Scenario hardening --------------------------------------------------- *)

let expect_error ~needle json =
  match Mmb.Scenario.of_string json with
  | Ok _ -> Alcotest.failf "accepted: %s" json
  | Error e ->
      let has sub =
        let ls = String.length sub and le = String.length e in
        let rec go i = i + ls <= le && (String.sub e i ls = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" e needle)
        true (has needle)

let base_json dynamic =
  Printf.sprintf
    {|{"name": "t", "protocol": "bmmb", "topology": "line", "n": 6, "dynamic": %s}|}
    dynamic

let test_scenario_rejects_unknown_dynamic_field () =
  expect_error ~needle:{|unknown field "kinds"|}
    (base_json {|{"kinds": "churn"}|});
  expect_error ~needle:"kind, epoch, period, churn, seed"
    (base_json {|{"kinds": "churn"}|})

let test_scenario_rejects_bad_kind () =
  expect_error ~needle:"static, flap, churn, adversary"
    (base_json {|{"kind": "chrn"}|})

let test_scenario_rejects_non_object () =
  expect_error ~needle:"must be an object" (base_json {|"churn"|})

let test_scenario_rejects_fmmb_dynamic () =
  expect_error ~needle:"bmmb"
    {|{"name": "t", "protocol": "fmmb", "n": 12, "dynamic": {"kind": "flap"}}|}

let test_scenario_dotted_sweep () =
  let json =
    {|{"name": "t", "protocol": "bmmb", "topology": "line", "n": 6,
       "dynamic": {"kind": "churn", "epoch": 10},
       "sweep": {"param": "dynamic.epoch", "values": [2, 4]}}|}
  in
  match Mmb.Scenario.expand_string json with
  | Error e -> Alcotest.fail e
  | Ok specs ->
      Alcotest.(check (list (float 0.)))
        "sweep overrides inside the sub-object" [ 2.; 4. ]
        (List.map
           (fun s ->
             match s.Mmb.Scenario.dynamic with
             | Some d -> d.Mmb.Scenario.dyn_epoch
             | None -> Alcotest.fail "dynamic lost in expansion")
           specs)

let test_scenario_dynamic_run () =
  (* End-to-end: a churned scenario executes, reports epochs, completes. *)
  let json =
    {|{"name": "t", "protocol": "bmmb", "topology": "line", "n": 8,
       "gprime": "arbitrary", "extra": 5, "k": 2, "check": true,
       "dynamic": {"kind": "churn", "epoch": 6, "churn": 0.5, "seed": 2}}|}
  in
  match Mmb.Scenario.of_string json with
  | Error e -> Alcotest.fail e
  | Ok spec -> (
      match Mmb.Scenario.execute spec with
      | Error e -> Alcotest.fail e
      | Ok runs ->
          List.iter
            (fun r ->
              Alcotest.(check bool) "complete" true r.Mmb.Scenario.complete;
              Alcotest.(check int) "no violations" 0 r.Mmb.Scenario.violations;
              Alcotest.(check bool) "epochs reported" true
                (match r.Mmb.Scenario.epochs with
                | Some e -> e >= 1
                | None -> false))
            runs)

let suite =
  [
    ( "dyn",
      [
        Alcotest.test_case "epoch_of_time windows" `Quick test_epoch_of_time;
        Alcotest.test_case "flap alternates by period" `Quick
          test_flap_alternation;
        Alcotest.test_case "churn is pure in (seed, epoch)" `Quick
          test_churn_pure_and_deterministic;
        Alcotest.test_case "adversary chases the frontier" `Quick
          test_adversary_frontier;
        Alcotest.test_case "with_g' rebuild equivalence (randomized churn)"
          `Quick test_rebuild_equivalence;
        Alcotest.test_case "with_g' shares clean rows and reliable_bits"
          `Quick test_with_g'_shares_clean_rows;
        Alcotest.test_case "with_g' validates its inputs" `Quick
          test_with_g'_validates;
        Alcotest.test_case "refresh path counts dirty steps only" `Quick
          test_dual_refresh_path;
        Alcotest.test_case "static wrapper is a pointer" `Quick
          test_static_is_pointer;
        Alcotest.test_case "single-epoch schedule reproduces the golden trace"
          `Quick test_golden_byte_identity;
        Alcotest.test_case "static wrapper is byte-identical off-golden"
          `Quick test_paired_byte_identity;
        Alcotest.test_case "FMMB path unperturbed" `Quick test_fmmb_unperturbed;
        Alcotest.test_case "churned runs are deterministic" `Quick
          test_churn_determinism;
        Alcotest.test_case "static post-hoc audit stays sound under churn"
          `Quick test_churn_audit_sound;
        Alcotest.test_case "monitor classifies churned vs violated" `Quick
          test_monitor_churned_classification;
        Alcotest.test_case "scenario rejects unknown dynamic fields" `Quick
          test_scenario_rejects_unknown_dynamic_field;
        Alcotest.test_case "scenario rejects unknown dynamic kind" `Quick
          test_scenario_rejects_bad_kind;
        Alcotest.test_case "scenario rejects non-object dynamic" `Quick
          test_scenario_rejects_non_object;
        Alcotest.test_case "scenario rejects fmmb + dynamic" `Quick
          test_scenario_rejects_fmmb_dynamic;
        Alcotest.test_case "dotted sweep reaches dynamic.epoch" `Quick
          test_scenario_dotted_sweep;
        Alcotest.test_case "dynamic scenario runs end to end" `Quick
          test_scenario_dynamic_run;
      ] );
  ]
