(* The campaign runner (lib/exec): deterministic merge across worker
   counts and job orders, the content-addressed cache, resumable
   manifests, and the Sink capture plumbing.

   The identity tests run real 2- and 4-domain campaigns, so `dune
   runtest` exercises the parallel path itself, not just the sequential
   fallback. *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_path name =
  let p = Filename.concat "_exec_test" name in
  rm_rf p;
  Exec.Cache.mkdir_p "_exec_test";
  p

(* A job that runs a real BMMB simulation: everything (topology, problem,
   scheduler, seeds) derives from the spec, so it must be reproducible on
   any worker in any order — the property these tests pin down. *)
let sim_job seed =
  Exec.Job.make
    ~spec:
      (Dsim.Json.Obj
         [
           ("kind", Dsim.Json.String "line-bmmb");
           ("n", Dsim.Json.Number 12.);
           ("seed", Dsim.Json.Number (float_of_int seed));
         ])
    (fun () ->
      let dual = Graphs.Dual.of_equal (Graphs.Gen.line 12) in
      let rng = Dsim.Rng.create ~seed in
      let assignment = Mmb.Problem.random rng ~n:12 ~k:3 in
      let res =
        Obs.Run.bmmb ~dual ~fack:20. ~fprog:1.
          ~policy:(Amac.Schedulers.random_compliant ())
          ~assignment ~seed ()
      in
      Exec.Sink.printf "job seed=%d time=%.1f\n" seed res.Mmb.Runner.time;
      Dsim.Json.Obj
        [
          ("time", Dsim.Json.Number res.Mmb.Runner.time);
          ("bcasts", Dsim.Json.Number (float_of_int res.Mmb.Runner.bcasts));
          ("complete", Dsim.Json.Bool res.Mmb.Runner.complete);
        ])

(* Everything observable about an outcome except wall clock. *)
let signature outcomes =
  Array.to_list outcomes
  |> List.map (fun o ->
         Printf.sprintf "%d|%s|%s|%s|%s" o.Exec.Campaign.index
           o.Exec.Campaign.digest
           (Dsim.Json.to_string o.Exec.Campaign.result)
           o.Exec.Campaign.output
           (Dsim.Json.to_string
              (Obs.Global.snap_to_json o.Exec.Campaign.engine)))

let sources outcomes =
  Array.to_list outcomes
  |> List.map (fun o ->
         match o.Exec.Campaign.source with
         | Exec.Campaign.Ran -> "ran"
         | Exec.Campaign.Cached -> "cached"
         | Exec.Campaign.Resumed -> "resumed")

(* --- Deterministic merge across worker counts ---------------------------- *)

let test_parallel_identity () =
  let job_list () = List.init 8 sim_job in
  let serial, s1 = Exec.Campaign.run ~jobs:1 (job_list ()) in
  let two, s2 = Exec.Campaign.run ~jobs:2 (job_list ()) in
  let four, s4 = Exec.Campaign.run ~jobs:4 (job_list ()) in
  Alcotest.(check (list string))
    "2 domains, byte-identical outcomes" (signature serial) (signature two);
  Alcotest.(check (list string))
    "4 domains, byte-identical outcomes" (signature serial) (signature four);
  List.iter
    (fun s -> Alcotest.(check int) "all executed" 8 s.Exec.Campaign.ran)
    [ s1; s2; s4 ];
  Array.iteri
    (fun i o ->
      Alcotest.(check int) "slot i holds job i" i o.Exec.Campaign.index;
      Alcotest.(check bool)
        "each job contributes one engine run" true
        (o.Exec.Campaign.engine.Obs.Global.runs = 1))
    serial

(* Satellite: per-worker RNG hygiene.  The same cell embedded in different
   job lists lands on different workers in a different interleaving — its
   result must not change. *)
let test_rng_hygiene_across_orders () =
  let find seed outcomes =
    let target = Exec.Job.digest ~salt:"" (sim_job seed) in
    Array.to_list outcomes
    |> List.find (fun o -> o.Exec.Campaign.digest = target)
  in
  let a, _ =
    Exec.Campaign.run ~jobs:2 [ sim_job 5; sim_job 6; sim_job 7 ]
  in
  let b, _ =
    Exec.Campaign.run ~jobs:2 [ sim_job 7; sim_job 9; sim_job 5; sim_job 3 ]
  in
  List.iter
    (fun seed ->
      let oa = find seed a and ob = find seed b in
      Alcotest.(check string)
        (Printf.sprintf "seed %d result independent of order/worker" seed)
        (Dsim.Json.to_string oa.Exec.Campaign.result)
        (Dsim.Json.to_string ob.Exec.Campaign.result);
      Alcotest.(check string)
        (Printf.sprintf "seed %d report text too" seed)
        oa.Exec.Campaign.output ob.Exec.Campaign.output)
    [ 5; 7 ]

(* --- Content-addressed cache --------------------------------------------- *)

let test_cache_hit_and_salt_invalidation () =
  let dir = fresh_path "cache_roundtrip" in
  let jobs () = List.init 4 sim_job in
  let run salt =
    let cache = Exec.Cache.create ~dir in
    let outcomes, stats = Exec.Campaign.run ~jobs:1 ~salt ~cache (jobs ()) in
    (signature outcomes, stats)
  in
  let sig1, s1 = run "v1" in
  Alcotest.(check int) "cold cache executes all" 4 s1.Exec.Campaign.ran;
  let sig2, s2 = run "v1" in
  Alcotest.(check int) "warm cache executes none" 0 s2.Exec.Campaign.ran;
  Alcotest.(check int) "all four served from cache" 4 s2.Exec.Campaign.cached;
  Alcotest.(check (list string)) "replay is byte-identical" sig1 sig2;
  let _, s3 = run "v2" in
  Alcotest.(check int) "salt bump invalidates everything" 4
    s3.Exec.Campaign.ran

let test_cache_counts_hits () =
  let dir = fresh_path "cache_counts" in
  let cache = Exec.Cache.create ~dir in
  let _ = Exec.Campaign.run ~jobs:1 ~cache [ sim_job 1; sim_job 2 ] in
  Alcotest.(check int) "two misses on a cold cache" 2
    (Exec.Cache.misses cache);
  let cache2 = Exec.Cache.create ~dir in
  let _ = Exec.Campaign.run ~jobs:1 ~cache:cache2 [ sim_job 1; sim_job 2 ] in
  Alcotest.(check int) "two hits on the warm cache" 2 (Exec.Cache.hits cache2)

(* A killed run leaves [*.jsonl.tmp.<disc>] orphans behind (the window
   between [store]'s open and its rename); re-opening the cache must
   sweep them while leaving finished entries and unrelated files alone. *)
let test_cache_sweeps_orphaned_tmp () =
  let dir = fresh_path "cache_orphans" in
  let cache = Exec.Cache.create ~dir in
  let _ = Exec.Campaign.run ~jobs:1 ~cache [ sim_job 1; sim_job 2 ] in
  let write name text =
    let oc = open_out_bin (Filename.concat dir name) in
    output_string oc text;
    close_out oc
  in
  write "deadbeef.jsonl.tmp.3" "{\"torn\":";
  write "cafe.jsonl.tmp.0" "";
  write "unrelated.txt" "keep me";
  let cache2 = Exec.Cache.create ~dir in
  let names = Array.to_list (Sys.readdir dir) in
  Alcotest.(check bool)
    "orphaned temp files removed" false
    (List.exists (fun n -> Filename.check_suffix n ".tmp.3" || Filename.check_suffix n ".tmp.0") names);
  Alcotest.(check bool)
    "unrelated files kept" true
    (List.mem "unrelated.txt" names);
  let _ = Exec.Campaign.run ~jobs:1 ~cache:cache2 [ sim_job 1; sim_job 2 ] in
  Alcotest.(check int) "finished entries survived the sweep" 2
    (Exec.Cache.hits cache2)

(* --- Resumable manifest --------------------------------------------------- *)

let test_resume_from_partial_manifest () =
  let manifest = fresh_path "resume.jsonl" in
  let all = List.init 6 sim_job in
  let prefix = List.filteri (fun i _ -> i < 3) all in
  let baseline, _ = Exec.Campaign.run ~jobs:1 all in
  (* An interrupted campaign: only the first three cells made it to disk
     (same per-index digests as the full campaign). *)
  let _, s1 = Exec.Campaign.run ~jobs:1 ~manifest prefix in
  Alcotest.(check int) "interrupted run executed its prefix" 3
    s1.Exec.Campaign.ran;
  (* A torn final line — the crash wrote half a record. *)
  let oc = open_out_gen [ Open_append ] 0o644 manifest in
  output_string oc "{\"idx\": 99, \"truncated";
  close_out oc;
  let resumed, s2 = Exec.Campaign.run ~jobs:2 ~manifest all in
  Alcotest.(check int) "three jobs replayed from the checkpoint" 3
    s2.Exec.Campaign.resumed;
  Alcotest.(check int) "three executed fresh" 3 s2.Exec.Campaign.ran;
  Alcotest.(check (list string))
    "prefix replayed, remainder computed"
    [ "resumed"; "resumed"; "resumed"; "ran"; "ran"; "ran" ]
    (sources resumed);
  Alcotest.(check (list string))
    "resumed campaign is byte-identical to an uninterrupted one"
    (signature baseline) (signature resumed);
  (* The completed campaign checkpointed everything: a third invocation
     replays all six without touching the simulator. *)
  let _, s3 = Exec.Campaign.run ~jobs:1 ~manifest all in
  Alcotest.(check int) "full manifest leaves nothing to run" 0
    s3.Exec.Campaign.ran

let test_manifest_salt_mismatch_restarts () =
  let manifest = fresh_path "salted.jsonl" in
  let all = [ sim_job 1; sim_job 2 ] in
  let _ = Exec.Campaign.run ~jobs:1 ~salt:"v1" ~manifest all in
  let _, s = Exec.Campaign.run ~jobs:1 ~salt:"v2" ~manifest all in
  Alcotest.(check int) "stale-salt manifest is discarded, not replayed" 2
    s.Exec.Campaign.ran

(* --- Job keying ------------------------------------------------------------ *)

let test_canonical_key_order_invariance () =
  let a =
    Dsim.Json.Obj
      [
        ("n", Dsim.Json.Number 12.);
        ("seed", Dsim.Json.Number 3.);
        ("nested", Dsim.Json.Obj [ ("b", Dsim.Json.Null); ("a", Dsim.Json.Bool true) ]);
      ]
  in
  let b =
    Dsim.Json.Obj
      [
        ("nested", Dsim.Json.Obj [ ("a", Dsim.Json.Bool true); ("b", Dsim.Json.Null) ]);
        ("seed", Dsim.Json.Number 3.);
        ("n", Dsim.Json.Number 12.);
      ]
  in
  Alcotest.(check string) "field order never changes the canonical form"
    (Exec.Job.canonical a) (Exec.Job.canonical b);
  let job spec = Exec.Job.make ~spec (fun () -> Dsim.Json.Null) in
  Alcotest.(check string) "so digests agree"
    (Exec.Job.digest ~salt:"s" (job a))
    (Exec.Job.digest ~salt:"s" (job b));
  Alcotest.(check bool) "salt is part of the address" false
    (Exec.Job.digest ~salt:"s" (job a) = Exec.Job.digest ~salt:"t" (job a));
  Alcotest.(check bool) "spec is part of the address" false
    (Exec.Job.digest ~salt:"s" (job a)
    = Exec.Job.digest ~salt:"s" (job Dsim.Json.Null))

(* --- Sink ------------------------------------------------------------------ *)

let test_sink_capture_nests () =
  let (), outer =
    Exec.Sink.capture (fun () ->
        Exec.Sink.emit "a";
        let (), inner = Exec.Sink.capture (fun () -> Exec.Sink.emit "b") in
        Alcotest.(check string) "inner capture sees only its own text" "b"
          inner;
        Exec.Sink.printf "%c" 'c')
  in
  Alcotest.(check string) "outer capture excludes the nested text" "ac" outer

let suite =
  [
    ( "exec",
      [
        Alcotest.test_case "deterministic merge at 1/2/4 domains" `Quick
          test_parallel_identity;
        Alcotest.test_case "per-worker RNG hygiene across orders" `Quick
          test_rng_hygiene_across_orders;
        Alcotest.test_case "cache round-trip + salt invalidation" `Quick
          test_cache_hit_and_salt_invalidation;
        Alcotest.test_case "cache hit/miss accounting" `Quick
          test_cache_counts_hits;
        Alcotest.test_case "cache sweeps orphaned temp files" `Quick
          test_cache_sweeps_orphaned_tmp;
        Alcotest.test_case "resume from a torn partial manifest" `Quick
          test_resume_from_partial_manifest;
        Alcotest.test_case "manifest salt mismatch restarts" `Quick
          test_manifest_salt_mismatch_restarts;
        Alcotest.test_case "canonical job keying" `Quick
          test_canonical_key_order_invariance;
        Alcotest.test_case "sink capture nesting" `Quick
          test_sink_capture_nests;
      ] );
  ]
