let test_empty () =
  let h : int Dsim.Heap.t = Dsim.Heap.create () in
  Alcotest.(check bool) "empty" true (Dsim.Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Dsim.Heap.length h);
  Alcotest.(check bool) "pop none" true (Dsim.Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Dsim.Heap.peek_time h = None)

let test_ordering () =
  let h = Dsim.Heap.create () in
  ignore (Dsim.Heap.push h ~time:3. "c");
  ignore (Dsim.Heap.push h ~time:1. "a");
  ignore (Dsim.Heap.push h ~time:2. "b");
  let drain () =
    let rec go acc =
      match Dsim.Heap.pop h with
      | None -> List.rev acc
      | Some (_, v) -> go (v :: acc)
    in
    go []
  in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] (drain ())

let test_fifo_at_equal_times () =
  let h = Dsim.Heap.create () in
  List.iter (fun v -> ignore (Dsim.Heap.push h ~time:1. v)) [ 1; 2; 3; 4 ];
  let rec drain acc =
    match Dsim.Heap.pop h with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4 ] (drain [])

let test_cancel () =
  let h = Dsim.Heap.create () in
  let _a = Dsim.Heap.push h ~time:1. "a" in
  let b = Dsim.Heap.push h ~time:2. "b" in
  let _c = Dsim.Heap.push h ~time:3. "c" in
  Dsim.Heap.cancel h b;
  Alcotest.(check int) "length after cancel" 2 (Dsim.Heap.length h);
  Dsim.Heap.cancel h b (* double cancel is a no-op *);
  Alcotest.(check int) "length unchanged" 2 (Dsim.Heap.length h);
  let rec drain acc =
    match Dsim.Heap.pop h with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list string)) "b skipped" [ "a"; "c" ] (drain [])

let test_cancel_root () =
  let h = Dsim.Heap.create () in
  let a = Dsim.Heap.push h ~time:1. "a" in
  ignore (Dsim.Heap.push h ~time:2. "b");
  Dsim.Heap.cancel h a;
  Alcotest.(check (option (float 1e-9))) "peek skips dead root" (Some 2.)
    (Dsim.Heap.peek_time h);
  (match Dsim.Heap.pop h with
  | Some (_, v) -> Alcotest.(check string) "pop skips dead root" "b" v
  | None -> Alcotest.fail "expected b")

let test_cancel_of_popped () =
  let h = Dsim.Heap.create () in
  let a = Dsim.Heap.push h ~time:1. "a" in
  let b = Dsim.Heap.push h ~time:2. "b" in
  ignore (Dsim.Heap.pop h) (* pops a *);
  Dsim.Heap.cancel h a (* must be a no-op: already popped *);
  Alcotest.(check int) "b still live" 1 (Dsim.Heap.length h);
  Alcotest.(check int) "cancel of popped not counted" 0
    (Dsim.Heap.cancelled h);
  Dsim.Heap.cancel h b;
  Dsim.Heap.cancel h b;
  Alcotest.(check int) "double cancel counted once" 1 (Dsim.Heap.cancelled h);
  Alcotest.(check bool) "drained" true (Dsim.Heap.pop h = None)

let test_pop_if_before () =
  let h = Dsim.Heap.create () in
  Alcotest.(check bool) "empty" true (Dsim.Heap.pop_if_before ~horizon:5. h = Dsim.Heap.Empty);
  ignore (Dsim.Heap.push h ~time:3. "a");
  ignore (Dsim.Heap.push h ~time:7. "b");
  Alcotest.(check bool) "beyond horizon stays queued" true
    (Dsim.Heap.pop_if_before ~horizon:2. h = Dsim.Heap.Later 3.);
  Alcotest.(check int) "nothing was popped" 2 (Dsim.Heap.length h);
  Alcotest.(check bool) "time exactly at horizon pops" true
    (Dsim.Heap.pop_if_before ~horizon:3. h = Dsim.Heap.Due (3., "a"));
  Alcotest.(check bool) "no horizon always pops" true
    (Dsim.Heap.pop_if_before h = Dsim.Heap.Due (7., "b"));
  Alcotest.(check bool) "drained" true
    (Dsim.Heap.pop_if_before h = Dsim.Heap.Empty)

let test_pop_if_before_skips_dead () =
  let h = Dsim.Heap.create () in
  let a = Dsim.Heap.push h ~time:1. "a" in
  ignore (Dsim.Heap.push h ~time:4. "b");
  Dsim.Heap.cancel h a;
  (* The dead root must be drained before the horizon comparison: the
     live minimum is 4., past the horizon. *)
  Alcotest.(check bool) "dead root invisible to the horizon check" true
    (Dsim.Heap.pop_if_before ~horizon:2. h = Dsim.Heap.Later 4.)

let test_nan_rejected () =
  let h = Dsim.Heap.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Heap.push: NaN time")
    (fun () -> ignore (Dsim.Heap.push h ~time:Float.nan ()))

let prop_drain_sorted =
  QCheck.Test.make ~name:"heap drains in sorted stable order" ~count:200
    QCheck.(list (pair (float_bound_exclusive 1000.) small_int))
    (fun entries ->
      let h = Dsim.Heap.create () in
      List.iter (fun (time, v) -> ignore (Dsim.Heap.push h ~time v)) entries;
      let rec drain acc =
        match Dsim.Heap.pop h with
        | None -> List.rev acc
        | Some (time, v) -> drain ((time, v) :: acc)
      in
      let out = drain [] in
      let times = List.map fst out in
      List.sort compare times = times && List.length out = List.length entries)

let prop_cancel_half =
  QCheck.Test.make ~name:"cancelling entries removes exactly them" ~count:200
    QCheck.(list (float_bound_exclusive 1000.))
    (fun times ->
      let h = Dsim.Heap.create () in
      let handles =
        List.mapi (fun i time -> (i, Dsim.Heap.push h ~time i)) times
      in
      let cancelled =
        List.filter_map
          (fun (i, hd) ->
            if i mod 2 = 0 then begin
              Dsim.Heap.cancel h hd;
              Some i
            end
            else None)
          handles
      in
      let rec drain acc =
        match Dsim.Heap.pop h with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      let out = drain [] in
      List.for_all (fun i -> not (List.mem i out)) cancelled
      && List.length out = List.length times - List.length cancelled)

let suite =
  [
    ( "dsim.heap",
      [
        Alcotest.test_case "empty heap" `Quick test_empty;
        Alcotest.test_case "pops in time order" `Quick test_ordering;
        Alcotest.test_case "stable at equal times" `Quick test_fifo_at_equal_times;
        Alcotest.test_case "cancellation" `Quick test_cancel;
        Alcotest.test_case "cancel at root" `Quick test_cancel_root;
        Alcotest.test_case "cancel of popped entry" `Quick
          test_cancel_of_popped;
        Alcotest.test_case "pop_if_before semantics" `Quick test_pop_if_before;
        Alcotest.test_case "pop_if_before skips dead roots" `Quick
          test_pop_if_before_skips_dead;
        Alcotest.test_case "rejects NaN time" `Quick test_nan_rejected;
        QCheck_alcotest.to_alcotest prop_drain_sorted;
        QCheck_alcotest.to_alcotest prop_cancel_half;
      ] );
  ]
