(* Fixture: the sanctioned commutative-traversal escape — calling
   Dsim.Tbl.iter_commutative is not a D1 hit (the rule matches raw
   Hashtbl.iter/fold only), while the raw call beside it still is. *)
let cancel_all cancel t = Dsim.Tbl.iter_commutative (fun _ h -> cancel h) t

let bad t = Hashtbl.iter (fun _ _ -> ()) t
