(* Fixture: D3 positive when linted under a lib/ path. *)
let stamp () = Sys.time ()

let home () = Sys.getenv "HOME"
