(* Hot fixture: disciplined hot-path code.  Every hazard the H-rules
   look for appears here in its sanctioned form — guarded formatting,
   a cold-prefixed formatter, a hatched init-phase allocation, and a
   compiler-specialized comparison — so the analyzer reports nothing. *)
type t = { mutable tracing : bool; mutable hits : int }

let bump t = t.hits <- t.hits + 1

let note t = if t.tracing then ignore (Printf.sprintf "hits=%d" t.hits)

let pp_hits t = Printf.sprintf "hits=%d" t.hits

let same_label (a : string) (b : string) = a = b

let table n = List.init n (fun i -> (i, i))
[@@mmb.alloc_ok "fixture: init-phase table build"]
