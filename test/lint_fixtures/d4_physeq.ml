(* Fixture: D4 positive — physical equality on non-int expressions. *)
let same_list a b = a == b

let diff_ref a b = a != b

(* Physical equality against an int literal is the accepted idiom for
   sentinel checks and must NOT be flagged. *)
let is_zero x = x == 0
