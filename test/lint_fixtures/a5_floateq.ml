(* A5 fixture: float literals under polymorphic =/<>; the Float.equal
   and integer comparisons must NOT be flagged. *)
let is_zero x = x = 0.

let nonzero y = 0. <> y

let ok x = Float.equal x 0.

let int_ok n = n = 0
