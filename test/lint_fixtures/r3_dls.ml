(* R3 fixture: Domain.DLS outside lib/exec.  All three references fire
   when posed elsewhere; the same source is silent under lib/exec. *)
let k = Domain.DLS.new_key (fun () -> 0)

let get () = Domain.DLS.get k

let set v = Domain.DLS.set k v
