(* Hot fixture (H1): [compare] passed first-class as a comparator at a
   boxed type — the compiler specializes only direct full applications,
   never a comparator argument, so this is a genuine generic-compare
   call per element pair. *)
let sort_pairs (xs : (int * int) list) = List.sort compare xs
