(* Fixture: D1 hit silenced by a same-line suppression comment. *)
let cardinal t = Hashtbl.fold (fun _ () acc -> acc + 1) t 0 (* lint: allow D1 *)

(* lint: allow D1 — counting is order-independent *)
let cardinal' t = Hashtbl.fold (fun _ () acc -> acc + 1) t 0
