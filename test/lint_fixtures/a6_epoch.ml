(* A6 fixture: epoch mutation from outside lib/dyn.  Posed at a
   protocol path, the [view] consult and the oracle probe must be
   flagged; the constructor and the read-only counter are setup and
   measurement, sanctioned everywhere. *)
let build base = Dyn.Dual.of_static base
let consult d now = Dyn.Dual.view d ~time:now
let probe d = Dyn.Dual.note_delivery d ~node:0 ~msg:3
let read d = Dyn.Dual.epoch d
