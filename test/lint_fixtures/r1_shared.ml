(* R1 fixture: one top-level allocation per lattice class.  The three
   shared-unprotected items fire; the Atomic and DLS counterparts stay
   silent, as does function-local state. *)
let table = Hashtbl.create 16

let hits = ref 0

let scratch = Array.make 4 0.

let counter = Atomic.make 0

let key = Domain.DLS.new_key (fun () -> 0)

let local_only n = Hashtbl.create n

type cell = { mutable v : int }

let cell = { v = 0 }
