(* Clean fixture for the checker: protocol-shaped code that stays below
   every architecture rule even when posed under lib/mmb/. *)
type t = { mutable sent : int; dual : Graphs.Dual.t }

let create dual = { sent = 0; dual }

let n t = Graphs.Dual.n t.dual

let step t =
  t.sent <- t.sent + 1;
  let local = Buffer.create 8 in
  Buffer.add_string local "x";
  Buffer.length local

let close_enough a b = Float.abs (a -. b) < 1e-9
