(* A2 fixture: posed under lib/mmb/, adjacency queries pierce the MAC
   abstraction; the sanctioned Dual surface does not. *)
let bad g u v = Graphs.Graph.mem_edge g u v

let fine dual = Graphs.Dual.n dual
