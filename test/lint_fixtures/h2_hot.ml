(* Hot fixture (H2): a [ref] bound inside a hot function and captured
   by an iteration closure — the closure must be heap-allocated to
   carry the cell. *)
let count_evens (a : int array) =
  let n = ref 0 in
  Array.iter (fun x -> if x mod 2 = 0 then incr n) a;
  !n
