(* Hot fixture (H4): formatting on the hot set without a tracing-off
   guard — violates the zero-alloc-when-off contract. *)
let label (x : int) = Printf.sprintf "slot=%d" x
