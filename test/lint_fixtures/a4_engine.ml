(* A4 fixture: posed above the MAC, direct engine access must go through
   the sanctioned amac seams instead. *)
let kickoff sim f = Dsim.Sim.schedule_at sim ~time:0. f

let emit tr ~time event = Dsim.Trace.record tr ~time event
