(* Suppression fixture for the checker's marker: both hatches live. *)
(* check: allow A3 — deliberate singleton for this fixture *)
let counter = ref 0

let cache = Hashtbl.create 16 (* check: allow A3 *)
