(* R4 fixture: lazy and memoized top-level values.  The unforced lazy
   and the memo closure fire; the init-forced lazy and the init-scratch
   closure (allocation consumed before the function is built) stay
   silent. *)
let config = lazy (Hashtbl.create 16)

let forced = lazy (Array.make 4 0)

let () = ignore (Lazy.force forced)

let memo =
  let cache = Hashtbl.create 64 in
  fun x ->
    match Hashtbl.find_opt cache x with
    | Some y -> y
    | None ->
        let y = x * x in
        Hashtbl.add cache x y;
        y

let precomputed =
  let rng = Rng.create ~seed:7 in
  let first = Rng.int rng 10 in
  fun x -> first + x
