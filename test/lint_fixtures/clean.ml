(* Fixture: determinism-clean code — zero findings expected. *)
let total t = List.fold_left (fun acc (_, v) -> acc + v) 0 t

let ordered l = List.sort Int.compare l

let is_zero x = x = 0
