(* Stale-hatch fixture: the comment below suppresses nothing. *)
(* lint: allow D1 — nothing here iterates a Hashtbl *)
let double x = 2 * x
