(* Hot fixture (H3): an Obj escape.  H3 ranges over all of lib/, not
   just the hot set, and accepts only the allowlist as a hatch. *)
let erase (x : int list) = Obj.repr x
