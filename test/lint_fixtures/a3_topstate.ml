(* A3 fixture: top-level mutable state at module initialization.  The
   function-local creators below must NOT be flagged. *)
let counter = ref 0

let cache = Hashtbl.create 16

let derived = (Buffer.create 64, 3)

let per_call () =
  let local = ref 0 in
  incr local;
  !local

let lazy_state = lazy (Hashtbl.create 8)
