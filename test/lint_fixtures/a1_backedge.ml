(* A1 fixture: posed under lib/mmb/, these are layer back-edges — the
   protocol layer reaching up into observability. *)
let note sim = Obs.Global.note_sim sim

let finish o = Obs.Observer.finish o ~allow_open:false
