(* Fixture: D1 hit that fixtures.allow exempts for this whole file. *)
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t []
