(* Fixture: D2 positive — ambient Random outside Dsim.Rng. *)
let flip () = Random.bool ()

let jitter () = Random.State.float (Random.get_state ()) 1.0
