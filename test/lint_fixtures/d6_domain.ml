let f work = Domain.spawn work
let m = Mutex.create ()
let c = Atomic.make 0
let g () = Atomic.incr c
