(* R2 fixture: closures crossing the Domain boundary.  The Hashtbl and
   ref captures fire; the Atomic-only closure is the sanctioned
   counterpart and stays silent. *)
let spawned f =
  let shared = Hashtbl.create 8 in
  let d = Domain.spawn (fun () -> Hashtbl.add shared 1 1; f ()) in
  Domain.join d

let pooled tasks =
  let acc = ref 0 in
  Pool.run ~jobs:2 ~tasks (fun i -> acc := !acc + i)

let clean tasks =
  let out = Atomic.make 0 in
  Pool.run ~jobs:2 ~tasks (fun i -> ignore (Atomic.fetch_and_add out i))
