(* Fixture: D1 positive — raw Hashtbl traversal. *)
let sum t = Hashtbl.fold (fun _ v acc -> acc + v) t 0

let dump t = Hashtbl.iter (fun k v -> Printf.printf "%d %d\n" k v) t
