(* Fixture: D5 positive when linted under lib/amac or lib/mmb — both the
   bare [compare] and a lambda wrapping it. *)
let sorted l = List.sort compare l

let sorted_pairs l = List.sort (fun (a, _) (b, _) -> compare a b) l

(* A typed comparator must NOT be flagged. *)
let sorted_ints l = List.sort Int.compare l
