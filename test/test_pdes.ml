(* lib/pdes: the horizon-parallel engine.  The contract under test is
   the P/N decoupling — the partition count P is a model parameter and
   the domain count N only maps partitions onto workers — so every
   (trace, counter) pair must be byte-identical across 1 <= N <= P, the
   P = 1 path must be the literal serial engine (golden bytes), and the
   mega struct-of-arrays path must hold per-event allocation constant. *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let tmp_trace tag = Filename.temp_file ("pdes_" ^ tag) ".jsonl"

(* --- Graphs.Partition ----------------------------------------------------- *)

let test_partition_covers () =
  let g = Graphs.Gen.grid ~rows:8 ~cols:8 in
  List.iter
    (fun parts ->
      let part = Graphs.Partition.blocks g ~parts in
      Alcotest.(check int)
        "one entry per node" (Graphs.Graph.n g) (Array.length part);
      Array.iter
        (fun p ->
          Alcotest.(check bool)
            "block id in range" true
            (p >= 0 && p < parts))
        part;
      let sizes = Graphs.Partition.sizes part ~parts in
      Array.iter
        (fun s -> Alcotest.(check bool) "no empty block" true (s > 0))
        sizes;
      let total = Array.fold_left ( + ) 0 sizes in
      Alcotest.(check int) "sizes sum to n" (Graphs.Graph.n g) total)
    [ 1; 2; 4; 7 ]

let test_partition_balanced_and_deterministic () =
  let g = Graphs.Gen.line 1000 in
  let part = Graphs.Partition.blocks g ~parts:4 in
  let sizes = Graphs.Partition.sizes part ~parts:4 in
  Array.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "block size %d within 2x of even split" s)
        true
        (s >= 125 && s <= 500))
    sizes;
  let again = Graphs.Partition.blocks g ~parts:4 in
  Alcotest.(check bool) "partitioner is deterministic" true (part = again);
  (* A contiguous line cut into 4 blocks severs at most a few edges. *)
  let cut = Graphs.Partition.cut_edges g ~part in
  Alcotest.(check bool)
    (Printf.sprintf "line cut is small (%d edges)" cut)
    true (cut <= 8)

(* --- P = 1 is the serial engine: golden byte-identity --------------------- *)

let test_partitions_1_matches_golden () =
  let dual = Graphs.Dual.two_line ~d:5 in
  let assignment =
    [ (Graphs.Dual.two_line_a ~d:5 1, 0); (Graphs.Dual.two_line_b ~d:5 1, 1) ]
  in
  let path = tmp_trace "golden" in
  let r =
    Mmb.Runner.run_bmmb_pdes ~dual ~fack:8. ~fprog:1.
      ~policy:(Mmb.Lower_bound.two_line_policy ~d:5)
      ~assignment ~seed:0 ~partitions:1 ~domains:1 ~trace_out:path ()
  in
  let actual = read_file path in
  Sys.remove path;
  Alcotest.(check bool) "serial delegate completes" true r.Mmb.Runner.pd_complete;
  Alcotest.(check string)
    "P=1 trace is the committed serial golden, byte for byte"
    (read_file "golden/two_line_d5_seed0.jsonl")
    actual

(* --- Domain mapping invariance -------------------------------------------- *)

let pdes_line ~domains ~trace_out ?mk_dyn () =
  let dual = Graphs.Dual.of_equal (Graphs.Gen.line 60) in
  let rng = Dsim.Rng.create ~seed:3 in
  let assignment = Mmb.Problem.random rng ~n:60 ~k:3 in
  Mmb.Runner.run_bmmb_pdes ~dual ~fack:8. ~fprog:1.
    ~policy:(Amac.Schedulers.random_compliant ())
    ~assignment ~seed:3 ~partitions:4 ~domains ?mk_dyn ~trace_out ()

let check_domain_invariance ~tag ~run =
  let p1 = tmp_trace (tag ^ "_d1") in
  let p2 = tmp_trace (tag ^ "_d2") in
  let p4 = tmp_trace (tag ^ "_d4") in
  let r1 : Mmb.Runner.pdes_result = run ~domains:1 ~trace_out:p1 in
  let r2 : Mmb.Runner.pdes_result = run ~domains:2 ~trace_out:p2 in
  let r4 : Mmb.Runner.pdes_result = run ~domains:4 ~trace_out:p4 in
  let t1 = read_file p1 and t2 = read_file p2 and t4 = read_file p4 in
  Sys.remove p1;
  Sys.remove p2;
  Sys.remove p4;
  Alcotest.(check bool) "completes" true r1.Mmb.Runner.pd_complete;
  Alcotest.(check string) "trace bytes: domains 1 = 2" t1 t2;
  Alcotest.(check string) "trace bytes: domains 1 = 4" t1 t4;
  List.iter
    (fun (name, f) ->
      Alcotest.(check int) name (f r1) (f r2);
      Alcotest.(check int) name (f r1) (f r4))
    [
      ("bcasts", fun (r : Mmb.Runner.pdes_result) -> r.Mmb.Runner.pd_bcasts);
      ("rcvs", fun r -> r.Mmb.Runner.pd_rcvs);
      ("acks", fun r -> r.Mmb.Runner.pd_acks);
      ("deliveries", fun r -> r.Mmb.Runner.pd_deliveries);
      ("remote", fun r -> r.Mmb.Runner.pd_remote);
      ("events", fun r -> r.Mmb.Runner.pd_events);
      ("windows", fun r -> r.Mmb.Runner.pd_windows);
    ];
  Alcotest.(check (float 0.)) "completion time" r1.Mmb.Runner.pd_time
    r2.Mmb.Runner.pd_time

let test_domains_invariant_static () =
  check_domain_invariance ~tag:"static" ~run:(fun ~domains ~trace_out ->
      pdes_line ~domains ~trace_out ())

let test_domains_invariant_churn () =
  (* One private dynamic wrapper per partition: the churn schedule is a
     pure function of (seed, epoch), so per-partition copies stay in
     lockstep and the merged trace must again be mapping-invariant. *)
  let mk_dyn () =
    let g = Graphs.Gen.line 60 in
    let rng = Dsim.Rng.create ~seed:77 in
    let dual = Graphs.Dual.r_restricted_random rng ~g ~r:2 ~extra:20 in
    Dyn.Dual.of_schedule
      (Dyn.Schedule.churn ~base:dual ~epoch_len:5. ~rate:0.3 ~seed:7)
  in
  let dual =
    let g = Graphs.Gen.line 60 in
    let rng = Dsim.Rng.create ~seed:77 in
    Graphs.Dual.r_restricted_random rng ~g ~r:2 ~extra:20
  in
  let rng = Dsim.Rng.create ~seed:3 in
  let assignment = Mmb.Problem.random rng ~n:60 ~k:3 in
  check_domain_invariance ~tag:"churn" ~run:(fun ~domains ~trace_out ->
      Mmb.Runner.run_bmmb_pdes ~dual ~fack:8. ~fprog:1.
        ~policy:(Amac.Schedulers.random_compliant ())
        ~assignment ~seed:3 ~partitions:4 ~domains ~mk_dyn ~trace_out ())

(* --- Merged traces satisfy the MAC axioms --------------------------------- *)

let test_merged_trace_compliant () =
  let dual = Graphs.Dual.of_equal (Graphs.Gen.line 30) in
  let rng = Dsim.Rng.create ~seed:9 in
  let assignment = Mmb.Problem.random rng ~n:30 ~k:2 in
  let path = tmp_trace "audit" in
  let r =
    Mmb.Runner.run_bmmb_pdes ~dual ~fack:8. ~fprog:1.
      ~policy:(Amac.Schedulers.random_compliant ())
      ~assignment ~seed:9 ~partitions:3 ~domains:2 ~trace_out:path ()
  in
  Alcotest.(check bool) "completes" true r.Mmb.Runner.pd_complete;
  let entries =
    match Dsim.Trace_io.read_file ~path with
    | Ok es -> es
    | Error e -> Alcotest.fail ("merged trace unreadable: " ^ e)
  in
  Sys.remove path;
  Alcotest.(check int)
    "runner reports the merged line count" r.Mmb.Runner.pd_trace_entries
    (List.length entries);
  let tr = Dsim.Trace.create ~enabled:true () in
  List.iter
    (fun (e : Dsim.Trace.entry) -> Dsim.Trace.record tr ~time:e.time e.event)
    entries;
  match Amac.Compliance.audit ~dual ~fack:8. ~fprog:1. tr with
  | [] -> ()
  | vs ->
      Alcotest.failf "merged trace violates %d axiom(s): %s" (List.length vs)
        (String.concat "; "
           (List.map (fun v -> v.Amac.Compliance.rule) vs))

(* --- Error surface --------------------------------------------------------- *)

let test_domains_exceed_partitions () =
  let dual = Graphs.Dual.of_equal (Graphs.Gen.line 10) in
  let check_raises ~partitions ~domains =
    match
      Mmb.Runner.run_bmmb_pdes ~dual ~fack:8. ~fprog:1.
        ~policy:(Amac.Schedulers.random_compliant ())
        ~assignment:[ (0, 0) ] ~seed:1 ~partitions ~domains ()
    with
    | exception Pdes.Engine.Domains_exceed_partitions
        { domains = got_domains; partitions = got_partitions } ->
        Alcotest.(check (pair int int))
          "payload names both counts" (domains, partitions)
          (got_domains, got_partitions)
    | _ -> Alcotest.fail "expected Domains_exceed_partitions"
  in
  check_raises ~partitions:2 ~domains:3;
  (* The serial delegate enforces the same contract. *)
  check_raises ~partitions:1 ~domains:2

let test_fprog_above_fack_rejected () =
  let dual = Graphs.Dual.of_equal (Graphs.Gen.line 10) in
  Alcotest.check_raises "Fprog > Fack is invalid"
    (Invalid_argument
       "run_bmmb_pdes: Fprog must not exceed Fack (ack bound)") (fun () ->
      ignore
        (Mmb.Runner.run_bmmb_pdes ~dual ~fack:1. ~fprog:2.
           ~policy:(Amac.Schedulers.random_compliant ())
           ~assignment:[ (0, 0) ] ~seed:1 ~partitions:2 ~domains:1 ()))

(* --- Scenario plumbing ----------------------------------------------------- *)

let scenario_json ~extra_fields =
  Printf.sprintf
    {|{"name": "t", "protocol": "bmmb", "topology": "line", "n": 24,
       "k": 2, "fack": 8, "fprog": 1, "seed": 3%s}|}
    extra_fields

let test_scenario_fields_parse () =
  match Mmb.Scenario.of_string
          (scenario_json ~extra_fields:{|, "domains": 2, "partitions": 4|})
  with
  | Error e -> Alcotest.fail e
  | Ok spec ->
      Alcotest.(check int) "domains" 2 spec.Mmb.Scenario.domains;
      Alcotest.(check int) "partitions" 4 spec.Mmb.Scenario.partitions;
      (* Auto partitions resolve from the requested domain count. *)
      (match Mmb.Scenario.of_string
               (scenario_json ~extra_fields:{|, "domains": 3|})
       with
      | Error e -> Alcotest.fail e
      | Ok s -> Alcotest.(check int) "partitions auto = domains" 3
                  s.Mmb.Scenario.partitions);
      (* The resolved spec bakes both fields (campaign content address). *)
      let baked = Dsim.Json.to_string (Mmb.Scenario.spec_to_json spec) in
      Alcotest.(check bool) "domains baked" true
        (Analysis.Paths.find_substring ~sub:{|"domains":2|} baked <> None);
      Alcotest.(check bool) "partitions baked" true
        (Analysis.Paths.find_substring ~sub:{|"partitions":4|} baked <> None)

let expect_scenario_error ~needle json =
  match Mmb.Scenario.of_string json with
  | Ok _ -> Alcotest.failf "expected rejection mentioning %S" needle
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" e needle)
        true
        (Analysis.Paths.find_substring ~sub:needle e <> None)

let test_scenario_rejections () =
  expect_scenario_error ~needle:"domains-exceed-partitions"
    (scenario_json ~extra_fields:{|, "domains": 4, "partitions": 2|});
  expect_scenario_error ~needle:"scheduler"
    (scenario_json
       ~extra_fields:
         {|, "partitions": 2, "scheduler": "eager"|});
  expect_scenario_error ~needle:"arrivals"
    (scenario_json
       ~extra_fields:{|, "partitions": 2, "arrivals": "poisson", "rate": 1|});
  expect_scenario_error ~needle:"adversary"
    (scenario_json
       ~extra_fields:
         {|, "partitions": 2,
            "dynamic": {"kind": "adversary", "epoch": 5}|})

let test_scenario_domains_sweepable () =
  let json =
    scenario_json
      ~extra_fields:
        {|, "partitions": 4, "sweep": {"param": "domains", "values": [1, 2, 4]}|}
  in
  match Mmb.Scenario.expand_string json with
  | Error e -> Alcotest.fail e
  | Ok specs ->
      Alcotest.(check (list int))
        "one spec per swept domain count" [ 1; 2; 4 ]
        (List.map (fun s -> s.Mmb.Scenario.domains) specs);
      (* Swept specs execute through the partitioned engine and agree:
         same model parameter P, so identical results per seed. *)
      let results =
        List.map
          (fun s ->
            match Mmb.Scenario.execute s with
            | Ok [ r ] -> (r.Mmb.Scenario.complete, r.Mmb.Scenario.time)
            | Ok _ -> Alcotest.fail "expected a single run"
            | Error e -> Alcotest.fail e)
          specs
      in
      match results with
      | (c, t) :: rest ->
          Alcotest.(check bool) "complete" true c;
          List.iter
            (fun (c', t') ->
              Alcotest.(check bool) "complete" true c';
              Alcotest.(check (float 0.)) "same completion time" t t')
            rest
      | [] -> Alcotest.fail "no results"

(* --- Mega path allocation discipline --------------------------------------- *)

(* The struct-of-arrays engine must allocate O(1) minor words per event
   at steady state (scheduled closures only) — no per-delivery Hashtbl
   or list growth.  Comparing per-event allocation at two sizes catches
   any O(n)-per-event regression without pinning a fragile constant. *)
let test_mega_allocation_per_event () =
  let run n =
    let dual = Graphs.Dual.of_equal (Graphs.Gen.line n) in
    let rng = Dsim.Rng.create ~seed:5 in
    let assignment = Mmb.Problem.random rng ~n ~k:2 in
    let before = Gc.minor_words () in
    let r =
      Mmb.Runner.run_bmmb_pdes ~dual ~fack:8. ~fprog:1.
        ~policy:(Amac.Schedulers.random_compliant ())
        ~assignment ~seed:5 ~partitions:2 ~domains:1 ()
    in
    let words = Gc.minor_words () -. before in
    Alcotest.(check bool) "completes" true r.Mmb.Runner.pd_complete;
    words /. float_of_int r.Mmb.Runner.pd_events
  in
  let small = run 2_000 in
  let large = run 8_000 in
  Alcotest.(check bool)
    (Printf.sprintf
       "per-event allocation is size-independent (%.1f vs %.1f words)" small
       large)
    true
    (large <= (2. *. small) +. 64.)

(* --- Exec.Pool.resolve_jobs ------------------------------------------------ *)

let test_resolve_jobs () =
  let avail = Exec.Pool.available_parallelism () in
  Alcotest.(check int) "0 means auto" avail (Exec.Pool.resolve_jobs ~requested:0);
  Alcotest.(check int) "negative means auto" avail
    (Exec.Pool.resolve_jobs ~requested:(-3));
  Alcotest.(check int) "1 stays 1" 1 (Exec.Pool.resolve_jobs ~requested:1);
  Alcotest.(check int) "clamped to the machine" avail
    (Exec.Pool.resolve_jobs ~requested:(avail + 512))

let suite =
  [
    ( "pdes",
      [
        Alcotest.test_case "partition blocks cover every node" `Quick
          test_partition_covers;
        Alcotest.test_case "partitioner balanced and deterministic" `Quick
          test_partition_balanced_and_deterministic;
        Alcotest.test_case "P=1 reproduces the serial golden trace" `Quick
          test_partitions_1_matches_golden;
        Alcotest.test_case "trace bytes invariant across domains (static)"
          `Quick test_domains_invariant_static;
        Alcotest.test_case "trace bytes invariant across domains (churn)"
          `Quick test_domains_invariant_churn;
        Alcotest.test_case "merged trace passes the compliance audit" `Quick
          test_merged_trace_compliant;
        Alcotest.test_case "domains > partitions raises" `Quick
          test_domains_exceed_partitions;
        Alcotest.test_case "Fprog > Fack rejected" `Quick
          test_fprog_above_fack_rejected;
        Alcotest.test_case "scenario parses domains/partitions" `Quick
          test_scenario_fields_parse;
        Alcotest.test_case "scenario rejects invalid combinations" `Quick
          test_scenario_rejections;
        Alcotest.test_case "scenario sweeps domains" `Quick
          test_scenario_domains_sweepable;
        Alcotest.test_case "mega path allocates O(1) words per event" `Quick
          test_mega_allocation_per_event;
        Alcotest.test_case "Pool.resolve_jobs CLI convention" `Quick
          test_resolve_jobs;
      ] );
  ]
