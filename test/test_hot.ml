(* The hot-path analyzer: fixture files under lint_fixtures/ exercise
   each H-rule's positive hit exactly once and a disciplined
   counterpart with zero findings; scope tests pin H1/H2/H4 to the hot
   set (by path and by [@@@mmb.hot]) and H3 to all of lib/; hatch
   tests pin the suppression comment, H3's refusal of it, and the
   allowlist; front-end tests cover E0 on ill-typed source, the skip
   diagnostics for missing .cmt trees, the mmb-analysis/1 envelope's
   skips array, and the per-function inventory classification; and a
   real-tree scan asserts the shipped lib/ sources stay clean exactly
   as `dune build @hot` runs them. *)

let rules_of findings = List.map (fun f -> f.Analysis.Finding.rule) findings
let lines_of findings = List.map (fun f -> f.Analysis.Finding.line) findings

let check_rules name expected findings =
  Alcotest.(check (list string)) name expected (rules_of findings)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Pose a fixture file at a path, so rule scopes see it "living" there. *)
let posed fixture file = Hot.check_source ~file (read_file fixture)

let msg_mentions sub f =
  Analysis.Paths.find_substring ~sub f.Analysis.Finding.msg <> None

(* --- H1: polymorphic comparison at boxed types --------------------------- *)

let test_h1_comparator () =
  let fs = posed "lint_fixtures/h1_hot.ml" "lib/dsim/fixture.ml" in
  check_rules "first-class [compare] at a tuple type fires" [ "H1" ] fs;
  Alcotest.(check (list int)) "at the sort call" [ 5 ] (lines_of fs);
  List.iter
    (fun f ->
      Alcotest.(check bool) "message names the operator and the type" true
        (msg_mentions "compare" f && msg_mentions "int * int" f))
    fs;
  check_rules "out of scope off the hot set" []
    (posed "lint_fixtures/h1_hot.ml" "lib/obs/fixture.ml")

let test_h1_specialization_exemption () =
  (* Direct full applications at float/string are compiled to
     monomorphic comparisons (Translcore) — H1 must stay quiet — but
     the same operator passed as a comparator still fires. *)
  let file = "lib/dsim/fixture.ml" in
  check_rules "direct string = is specialized" []
    (Hot.check_source ~file "let eq (a : string) (b : string) = a = b");
  check_rules "direct float compare is specialized" []
    (Hot.check_source ~file
       "let cmp (a : float) (b : float) = compare a b");
  check_rules "first-class compare at float still fires" [ "H1" ]
    (Hot.check_source ~file
       "let sortf (xs : float list) = List.sort compare xs");
  check_rules "Hashtbl.hash is never specialized" [ "H1" ]
    (Hot.check_source ~file "let h (s : string) = Hashtbl.hash s")

(* --- H2: allocation in hot functions ------------------------------------- *)

let test_h2_ref_capture () =
  let fs = posed "lint_fixtures/h2_hot.ml" "lib/graphs/fixture.ml" in
  check_rules "ref-capturing iteration closure fires" [ "H2" ] fs;
  Alcotest.(check (list int)) "at the closure literal" [ 6 ] (lines_of fs);
  List.iter
    (fun f ->
      Alcotest.(check bool) "message names the captured cell" true
        (msg_mentions "(n)" f))
    fs;
  check_rules "out of scope off the hot set" []
    (posed "lint_fixtures/h2_hot.ml" "lib/obs/fixture.ml")

let test_h2_alloc_ok_hatch () =
  let file = "lib/amac/fixture.ml" in
  let src =
    "let count (a : int array) =\n\
    \  let n = ref 0 in\n\
    \  Array.iter (fun x -> if x > 0 then incr n) a;\n\
    \  !n\n\
     [@@mmb.alloc_ok \"fixture: justified\"]\n"
  in
  check_rules "a binding-level [@@mmb.alloc_ok] silences H2" []
    (Hot.check_source ~file src)

(* --- H3: unsafe escapes anywhere in lib/ --------------------------------- *)

let test_h3_scope_and_hatches () =
  let fs = posed "lint_fixtures/h3_hot.ml" "lib/obs/fixture.ml" in
  check_rules "Obj.repr fires even off the hot set" [ "H3" ] fs;
  check_rules "and on it" [ "H3" ]
    (posed "lint_fixtures/h3_hot.ml" "lib/dsim/fixture.ml");
  check_rules "but not outside lib/" []
    (posed "lint_fixtures/h3_hot.ml" "bench/fixture.ml");
  (* H3 is allowlist-only: the suppression comment that silences every
     other rule is ignored, the allow entry works. *)
  let src = "(* hot: allow H3 *)\nlet erase (x : int list) = Obj.repr x" in
  check_rules "suppression comment is refused" [ "H3" ]
    (Hot.check_source ~file:"lib/obs/fixture.ml" src);
  check_rules "allowlist entry is honoured" []
    (Hot.check_source ~file:"lib/obs/fixture.ml"
       ~allow:[ ("H3", "lib/obs/fixture.ml") ]
       src)

(* --- H4: unguarded formatting on the hot set ----------------------------- *)

let test_h4_unguarded_format () =
  let fs = posed "lint_fixtures/h4_hot.ml" "lib/dyn/fixture.ml" in
  check_rules "unguarded Printf.sprintf fires" [ "H4" ] fs;
  Alcotest.(check (list int)) "at the format call" [ 3 ] (lines_of fs);
  check_rules "out of scope off the hot set" []
    (posed "lint_fixtures/h4_hot.ml" "lib/obs/fixture.ml")

(* --- The disciplined counterpart ----------------------------------------- *)

let test_clean_fixture () =
  check_rules
    "guarded, cold-prefixed, hatched and specialized forms are all quiet" []
    (posed "lint_fixtures/hot_clean.ml" "lib/dsim/fixture.ml")

(* --- Hot-set membership by attribute ------------------------------------- *)

let test_hot_attribute_opt_in () =
  let body = "let sort_pairs (xs : (int * int) list) = List.sort compare xs" in
  check_rules "off the hot set, no attribute: quiet" []
    (Hot.check_source ~file:"lib/obs/fixture.ml" body);
  check_rules "[@@@mmb.hot] opts the module in" [ "H1" ]
    (Hot.check_source ~file:"lib/obs/fixture.ml"
       ("[@@@mmb.hot]\n" ^ body))

(* --- Suppression comments ------------------------------------------------ *)

let test_suppression_marker () =
  let src =
    "let sort_pairs (xs : (int * int) list) =\n\
    \  (* hot: allow H1 *)\n\
    \  List.sort compare xs"
  in
  check_rules "the hot marker suppresses" []
    (Hot.check_source ~file:"lib/dsim/fixture.ml" src);
  let src' =
    "let sort_pairs (xs : (int * int) list) =\n\
    \  (* lint: allow H1 *)\n\
    \  List.sort compare xs"
  in
  check_rules "the lint's marker does not silence this tool" [ "H1" ]
    (Hot.check_source ~file:"lib/dsim/fixture.ml" src')

(* --- Front ends ---------------------------------------------------------- *)

let test_ill_typed_is_e0 () =
  check_rules "ill-typed source is the standard E0" [ "E0" ]
    (Hot.check_source ~file:"lib/dsim/fixture.ml" "let x : int = \"s\"");
  check_rules "unparseable source too" [ "E0" ]
    (Hot.check_source ~file:"lib/dsim/fixture.ml" "let let let")

let test_missing_cmt_is_a_skip () =
  (* A root with no .cmt files: every requested file becomes a skip
     diagnostic, never a finding or a crash. *)
  let fs, skips =
    Hot.run_files ~root:"lint_fixtures" [ "lib/dsim/sim.ml" ]
  in
  check_rules "no findings" [] fs;
  match skips with
  | [ s ] ->
      Alcotest.(check string) "names the file" "lib/dsim/sim.ml"
        s.Analysis.Typed.sk_file;
      Alcotest.(check bool) "explains the cause" true
        (Analysis.Paths.find_substring ~sub:"no .cmt" s.sk_reason <> None)
  | skips -> Alcotest.failf "expected one skip, got %d" (List.length skips)

let test_envelope_skips () =
  let findings =
    Hot.check_source ~file:"lib/dsim/fixture.ml"
      (read_file "lint_fixtures/h4_hot.ml")
  in
  let text =
    Analysis.Report.to_json ~tool:"mmb_hot" ~files:2
      ~skips:[ ("lib/dsim/other.ml", "no .cmt under .") ]
      findings
  in
  match Dsim.Json.parse text with
  | Error e -> Alcotest.failf "envelope does not parse: %s" e
  | Ok json -> (
      (match Dsim.Json.member_opt json "schema" with
      | Some (Dsim.Json.String s) ->
          Alcotest.(check string) "shared schema" "mmb-analysis/1" s
      | _ -> Alcotest.fail "no schema field");
      match Dsim.Json.member_opt json "skips" with
      | Some (Dsim.Json.List [ skip ]) ->
          List.iter
            (fun key ->
              Alcotest.(check bool) ("skip has " ^ key) true
                (Dsim.Json.member_opt skip key <> None))
            [ "file"; "reason" ]
      | _ -> Alcotest.fail "envelope has no one-element skips array")

(* --- Inventory ----------------------------------------------------------- *)

let test_inventory_classification () =
  let file = "lib/dsim/fixture.ml" in
  let src =
    "let step (a : int array) (i : int) = a.(i) + 1\n\
     let build (n : int) = Array.init n (fun i -> i)\n"
  in
  let trees =
    [ { Analysis.Typed.t_file = file; t_str = Analysis.Typed.of_source ~file src } ]
  in
  (match Hot.Inventory.of_trees trees [ file ] with
  | [ e ] ->
      Alcotest.(check bool) "hot by path" true (e.Hot.Inventory.e_hot = `Path);
      Alcotest.(check (list string))
        "both functions inventoried" [ "step"; "build" ]
        (List.map (fun f -> f.Hot.Inventory.f_name) e.e_funcs);
      (match e.e_funcs with
      | [ step; build ] ->
          Alcotest.(check bool) "step is zero-alloc" true
            (Hot.Inventory.zero_alloc step.f_counts);
          Alcotest.(check int) "build allocates one closure" 1
            build.f_counts.Hot.Inventory.closures
      | _ -> Alcotest.fail "expected two functions")
  | entries -> Alcotest.failf "expected one entry, got %d" (List.length entries));
  Alcotest.(check int) "a non-hot module is not inventoried" 0
    (List.length
       (Hot.Inventory.of_trees
          [
            {
              Analysis.Typed.t_file = "lib/obs/fixture.ml";
              t_str = Analysis.Typed.of_source ~file:"lib/obs/fixture.ml" src;
            };
          ]
          [ "lib/obs/fixture.ml" ]))

(* --- The real tree ------------------------------------------------------- *)

let lib_files () = Analysis.Cli.collect_files ~exts:[ ".ml" ] [ "../lib" ]

(* The same scan `dune build @hot` performs.  The test binary runs from
   the build directory, so the library .cmt trees live one level up; if
   the build staged no cmts (cold or sandboxed run) every file degrades
   to a skip and the scan is vacuously clean — the @hot alias, which
   forces the library builds, is the authoritative gate. *)
let test_real_tree () =
  let files = lib_files () in
  let allow = Analysis.Allow.load "../hot.allow" in
  let fs, skips = Hot.run_files ~allow ~root:".." files in
  Alcotest.(check (list string)) "lib/ is hot-clean" []
    (List.map Analysis.Finding.to_string fs);
  if List.length skips = 0 then
    Alcotest.(check bool)
      (Printf.sprintf "scanned a substantial tree (%d files)"
         (List.length files))
      true
      (List.length files > 50)

let suite =
  [
    ( "hot",
      [
        Alcotest.test_case "H1 first-class comparator" `Quick
          test_h1_comparator;
        Alcotest.test_case "H1 specialization exemption" `Quick
          test_h1_specialization_exemption;
        Alcotest.test_case "H2 ref-capturing closure" `Quick
          test_h2_ref_capture;
        Alcotest.test_case "H2 [@@mmb.alloc_ok] hatch" `Quick
          test_h2_alloc_ok_hatch;
        Alcotest.test_case "H3 scope and hatches" `Quick
          test_h3_scope_and_hatches;
        Alcotest.test_case "H4 unguarded formatting" `Quick
          test_h4_unguarded_format;
        Alcotest.test_case "clean fixture is quiet" `Quick test_clean_fixture;
        Alcotest.test_case "[@@@mmb.hot] opts a module in" `Quick
          test_hot_attribute_opt_in;
        Alcotest.test_case "suppression marker" `Quick test_suppression_marker;
        Alcotest.test_case "ill-typed source is E0" `Quick
          test_ill_typed_is_e0;
        Alcotest.test_case "missing .cmt degrades to a skip" `Quick
          test_missing_cmt_is_a_skip;
        Alcotest.test_case "envelope carries the skips array" `Quick
          test_envelope_skips;
        Alcotest.test_case "inventory classification" `Quick
          test_inventory_classification;
        Alcotest.test_case "real lib/ tree is hot-clean" `Quick
          test_real_tree;
      ] );
  ]
