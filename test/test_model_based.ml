(* Model-based property tests: the event heap and the simulator against
   trivially-correct reference implementations driven by random operation
   sequences. *)

(* --- Heap vs sorted-list reference ----------------------------------------- *)

type op =
  | Push of float
  | Pop
  | Cancel of int
  | Peek
  | Pop_before of float

(* Discrete times (0..5) appear alongside continuous ones so equal-time
   collisions — where only the seq tiebreak orders entries — are common,
   and Pop_before horizons often land exactly on an entry's time (the
   at-the-horizon boundary must pop). *)
let time_gen =
  QCheck.Gen.(
    oneof
      [ float_bound_exclusive 1000.; map float_of_int (int_bound 5) ])

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun t -> Push t) time_gen);
        (3, return Pop);
        (2, map (fun i -> Cancel i) (int_bound 50));
        (2, return Peek);
        (2, map (fun t -> Pop_before t) time_gen);
      ])

let op_print = function
  | Push t -> Printf.sprintf "Push %.3f" t
  | Pop -> "Pop"
  | Cancel i -> Printf.sprintf "Cancel %d" i
  | Peek -> "Peek"
  | Pop_before t -> Printf.sprintf "Pop_before %.3f" t

let arbitrary_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_print ops))
    QCheck.Gen.(list_size (int_range 0 60) op_gen)

(* Reference: a list of (time, seq, value) alive entries; sorting under
   polymorphic compare orders by (time, seq), the heap's key. *)
let prop_heap_matches_reference =
  QCheck.Test.make ~name:"heap behaves like a sorted-list reference model"
    ~count:300 arbitrary_ops
    (fun ops ->
      let heap = Dsim.Heap.create () in
      let reference = ref [] (* (time, seq, value) alive entries *) in
      let handles = ref [] (* (op_index, handle, time, seq) *) in
      let seq = ref 0 in
      let eff_cancels = ref 0 in
      let ok = ref true in
      List.iteri
        (fun _ op ->
          match op with
          | Push t ->
              let h = Dsim.Heap.push heap ~time:t !seq in
              handles := (List.length !handles, h, t, !seq) :: !handles;
              reference := (t, !seq, !seq) :: !reference;
              incr seq
          | Pop -> (
              let expected =
                List.sort compare !reference |> function
                | [] -> None
                | (t, s, v) :: _ ->
                    reference := List.filter (fun (_, s', _) -> s' <> s) !reference;
                    Some (t, v)
              in
              match (Dsim.Heap.pop heap, expected) with
              | None, None -> ()
              | Some (t, v), Some (t', v') ->
                  if not (t = t' && v = v') then ok := false
              | _ -> ok := false)
          | Cancel i -> (
              (* [handles] also holds popped and already-cancelled entries,
                 so this op exercises cancel-of-popped / double-cancel; the
                 reference filter no-ops exactly when the heap must. *)
              match List.nth_opt !handles i with
              | None -> ()
              | Some (_, h, _, s) ->
                  Dsim.Heap.cancel heap h;
                  let before = List.length !reference in
                  reference := List.filter (fun (_, s', _) -> s' <> s) !reference;
                  if List.length !reference < before then incr eff_cancels)
          | Peek ->
              let expected =
                match List.sort compare !reference with
                | [] -> None
                | (t, _, _) :: _ -> Some t
              in
              if Dsim.Heap.peek_time heap <> expected then ok := false
          | Pop_before horizon -> (
              let expected =
                match List.sort compare !reference with
                | [] -> `Empty
                | (t, s, v) :: _ ->
                    if t > horizon then `Later t
                    else begin
                      reference :=
                        List.filter (fun (_, s', _) -> s' <> s) !reference;
                      `Due (t, v)
                    end
              in
              match (Dsim.Heap.pop_if_before ~horizon heap, expected) with
              | Dsim.Heap.Empty, `Empty -> ()
              | Dsim.Heap.Later t, `Later t' when t = t' -> ()
              | Dsim.Heap.Due (t, v), `Due (t', v') when t = t' && v = v' -> ()
              | _ -> ok := false))
        ops;
      if Dsim.Heap.length heap <> List.length !reference then ok := false;
      (* Cancels of popped/dead entries must not inflate the counter. *)
      if Dsim.Heap.cancelled heap <> !eff_cancels then ok := false;
      if Dsim.Heap.pushes heap <> !seq then ok := false;
      !ok)

(* --- Sim vs reference execution order --------------------------------------- *)

let prop_sim_runs_in_timestamp_order =
  QCheck.Test.make
    ~name:"simulator executes events in (time, insertion) order" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 40) (float_bound_exclusive 100.))
    (fun times ->
      let sim = Dsim.Sim.create () in
      let log = ref [] in
      List.iteri
        (fun i t ->
          ignore
            (Dsim.Sim.schedule_at sim ~time:t (fun () ->
                 log := (t, i) :: !log)))
        times;
      ignore (Dsim.Sim.run sim);
      let executed = List.rev !log in
      let expected =
        List.mapi (fun i t -> (t, i)) times
        |> List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2)
      in
      executed = expected)

let prop_sim_nested_events_keep_clock_monotone =
  QCheck.Test.make ~name:"virtual clock never goes backwards" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) (float_bound_exclusive 10.))
    (fun delays ->
      let sim = Dsim.Sim.create () in
      let last = ref neg_infinity in
      let monotone = ref true in
      let rec chain = function
        | [] -> ()
        | d :: rest ->
            ignore
              (Dsim.Sim.schedule sim ~delay:d (fun () ->
                   let now = Dsim.Sim.now sim in
                   if now < !last then monotone := false;
                   last := now;
                   chain rest))
      in
      chain delays;
      ignore (Dsim.Sim.run sim);
      !monotone)

(* --- Trace/JSONL round-trip over random traces ------------------------------ *)

let arbitrary_event =
  QCheck.Gen.(
    let node = int_bound 50 and msg = int_bound 50 in
    oneof
      [
        map2 (fun node msg -> Dsim.Trace.Arrive { node; msg }) node msg;
        map2 (fun node msg -> Dsim.Trace.Deliver { node; msg }) node msg;
        map3
          (fun node msg instance -> Dsim.Trace.Bcast { node; msg; instance })
          node msg (int_bound 100);
        map3
          (fun node msg instance -> Dsim.Trace.Rcv { node; msg; instance })
          node msg (int_bound 100);
        map3
          (fun node msg instance -> Dsim.Trace.Ack { node; msg; instance })
          node msg (int_bound 100);
        map3
          (fun node msg instance -> Dsim.Trace.Abort { node; msg; instance })
          node msg (int_bound 100);
      ])

let prop_jsonl_roundtrip =
  QCheck.Test.make ~name:"trace JSONL round-trips arbitrary traces" ~count:200
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 0 30)
           (pair (float_bound_exclusive 1e6) arbitrary_event)))
    (fun entries ->
      let tr = Dsim.Trace.create () in
      List.iter
        (fun (time, event) -> Dsim.Trace.record tr ~time event)
        (List.sort compare entries);
      match Dsim.Trace_io.of_jsonl (Dsim.Trace_io.to_jsonl tr) with
      | Ok parsed -> parsed = Dsim.Trace.entries tr
      | Error _ -> false)

let suite =
  [
    ( "model-based",
      [
        QCheck_alcotest.to_alcotest prop_heap_matches_reference;
        QCheck_alcotest.to_alcotest prop_sim_runs_in_timestamp_order;
        QCheck_alcotest.to_alcotest prop_sim_nested_events_keep_clock_monotone;
        QCheck_alcotest.to_alcotest prop_jsonl_roundtrip;
      ] );
  ]
