let () =
  Alcotest.run "amac_mmb"
    (Test_model_based.suite @ Test_heap.suite @ Test_stats_io.suite @ Test_sim.suite @ Test_rng.suite @ Test_trace.suite
   @ Test_graph.suite @ Test_bfs.suite @ Test_gen.suite @ Test_geometry.suite @ Test_dual.suite @ Test_dyn.suite
   @ Test_mis.suite @ Test_standard_mac.suite @ Test_enhanced_mac.suite
   @ Test_round_sync.suite @ Test_compliance.suite @ Test_compliance_mutation.suite @ Test_estimate.suite @ Test_schedulers.suite @ Test_problem.suite @ Test_bmmb.suite
   @ Test_fmmb.suite @ Test_fmmb_micro.suite @ Test_bounds.suite @ Test_lower_bound.suite
   @ Test_radio.suite @ Test_sinr.suite @ Test_fmmb_online.suite @ Test_online.suite @ Test_structuring.suite @ Test_scenario.suite @ Test_golden.suite @ Test_properties.suite @ Test_matrix.suite @ Test_integration.suite
   @ Test_determinism.suite @ Test_lint.suite @ Test_check.suite @ Test_race.suite @ Test_hot.suite @ Test_obs.suite
   @ Test_exec.suite @ Test_tracing.suite @ Test_pdes.suite)
